"""RunRequest / RunResponse and the shared resolve_request path."""

from __future__ import annotations

import json

import pytest

from repro.api import execute, simulate
from repro.config import PrefetchConfig, SimConfig
from repro.errors import ConfigError
from repro.obs import profile_run
from repro.sim.serialize import result_to_json
from repro.spec import (
    REQUEST_SCHEMA,
    RunRequest,
    RunResponse,
    resolve_request,
)
from repro.workloads import build_trace

LENGTH = 6_000


class TestRunRequestValidation:
    def test_empty_workload_rejected(self):
        with pytest.raises(ConfigError, match="workload"):
            RunRequest("")

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError, match="SimConfig"):
            RunRequest("gcc_like", config={"kind": "fdip"})

    def test_bad_trace_length_rejected(self):
        with pytest.raises(ConfigError, match="trace_length"):
            RunRequest("gcc_like", trace_length=0)

    def test_bad_shards_rejected(self):
        with pytest.raises(ConfigError, match="shards"):
            RunRequest("gcc_like", shards=0)

    def test_name_prefers_label(self):
        assert RunRequest("gcc_like").name == "gcc_like"
        assert RunRequest("gcc_like", label="exp3").name == "exp3"

    def test_unresolved_request_has_no_cache_key(self):
        with pytest.raises(ConfigError, match="resolve_request"):
            RunRequest("gcc_like").cache_key()


class TestResolveRequest:
    def test_pins_every_default(self):
        request = resolve_request(workload="gcc_like")
        assert request.resolved
        assert request.trace_length is not None
        assert request.shards == 1
        assert request.shard_overlap is None
        request.cache_key()   # resolvable now

    def test_kwargs_override_request_fields(self):
        base = RunRequest("gcc_like", trace_length=LENGTH, seed=1)
        overridden = resolve_request(base, seed=7, label="alt")
        assert overridden.seed == 7
        assert overridden.label == "alt"
        assert overridden.workload == "gcc_like"

    def test_monolithic_never_encodes_overlap(self):
        request = resolve_request(workload="gcc_like",
                                  trace_length=LENGTH,
                                  shards=1, shard_overlap=2_000)
        assert request.shard_overlap is None
        assert request.variant() == ""

    def test_sharded_gets_default_overlap(self):
        from repro.sim.sharding import DEFAULT_SHARD_OVERLAP

        request = resolve_request(workload="gcc_like",
                                  trace_length=200_000, shards=4)
        assert request.shard_overlap == DEFAULT_SHARD_OVERLAP
        assert request.variant().startswith("shards=4:")

    def test_shards_clamped_to_trace_length(self):
        request = resolve_request(workload="gcc_like",
                                  trace_length=2, shards=100)
        assert request.shards == 2

    def test_needs_a_workload(self):
        with pytest.raises(ConfigError, match="workload"):
            resolve_request()

    def test_rejects_non_request(self):
        with pytest.raises(ConfigError, match="RunRequest"):
            resolve_request(("gcc_like", SimConfig()))

    def test_idempotent(self):
        once = resolve_request(workload="gcc_like", trace_length=LENGTH)
        assert resolve_request(once) == once


class TestWireForm:
    def test_round_trip(self):
        request = resolve_request(
            workload="gcc_like",
            config=SimConfig(prefetch=PrefetchConfig(kind="fdip")),
            trace_length=LENGTH, seed=3, label="point-a")
        payload = request.to_dict()
        assert payload["schema"] == REQUEST_SCHEMA
        json.dumps(payload)   # JSON-compatible by construction
        rebuilt = RunRequest.from_dict(payload)
        assert rebuilt == request
        assert rebuilt.cache_key() == request.cache_key()

    def test_unknown_key_rejected(self):
        payload = RunRequest("gcc_like").to_dict()
        payload["surprise"] = 1
        with pytest.raises(ConfigError, match="surprise"):
            RunRequest.from_dict(payload)

    def test_wrong_schema_rejected(self):
        payload = RunRequest("gcc_like").to_dict()
        payload["schema"] = "repro.request/v99"
        with pytest.raises(ConfigError, match="schema"):
            RunRequest.from_dict(payload)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="mapping"):
            RunRequest.from_dict(None)


class TestExecute:
    def test_execute_matches_simulate_bit_identically(self):
        trace = build_trace("compress_like", LENGTH, seed=1)
        request = resolve_request(workload="compress_like",
                                  trace_length=LENGTH, seed=1,
                                  label="compress_like")
        response = execute(request)
        direct = simulate(trace, SimConfig(), name="compress_like")
        assert response.source == "computed"
        assert result_to_json(response.result) == result_to_json(direct)

    def test_execute_accepts_a_prebuilt_trace(self):
        trace = build_trace("compress_like", LENGTH, seed=1)
        request = resolve_request(workload="compress_like",
                                  trace_length=LENGTH, seed=1)
        via_trace = execute(request, trace=trace)
        rebuilt = execute(request)
        assert result_to_json(via_trace.result) == \
            result_to_json(rebuilt.result)

    def test_profile_on_sharded_request_rejected(self):
        request = resolve_request(workload="compress_like",
                                  trace_length=200_000, shards=4)
        with pytest.raises(ConfigError, match="monolithic"):
            execute(request, profile=True)


class TestRunResponse:
    def _response(self):
        trace = build_trace("compress_like", LENGTH, seed=1)
        return profile_run(trace, SimConfig())

    def test_profile_run_returns_response(self):
        response = self._response()
        assert isinstance(response, RunResponse)
        assert response.source == "computed"
        assert response.profile is not None
        assert response.profile["cycles"] == response.result.cycles

    def test_tuple_unpacking_shim_warns(self):
        response = self._response()
        with pytest.warns(DeprecationWarning,
                          match="response.result"):
            result, profile = response
        assert result is response.result
        assert profile is response.profile

    def test_bad_source_rejected(self):
        response = self._response()
        with pytest.raises(ConfigError, match="source"):
            RunResponse(result=response.result,
                        request=response.request, source="psychic")
