"""Result serialization and the persistent result store."""

import pytest

from repro.errors import ReproError
from repro.harness import ResultStore, Runner, technique_config
from repro.sim import (
    SimResult,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)


def make_result(**overrides):
    defaults = dict(
        name="w", prefetcher="fdip", cycles=1000, instructions=2000,
        mispredicts=10, bpred_accuracy=0.9, ftq_mean_occupancy=5.0,
        demand_misses=40, demand_merges=10, bus_utilization=0.25,
        l2_misses=5, prefetches_issued=100, prefetches_useful=50,
        prefetches_late=10, counters={"a.b": 3},
        ftq_occupancy_hist={0: 10, 4: 20},
        fetch_block_hist={6: 30},
        prefetch_lead_hist={12: 4},
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestSerialization:
    def test_dict_roundtrip(self):
        original = make_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored == original

    def test_json_roundtrip_preserves_int_keys(self):
        original = make_result()
        restored = result_from_json(result_to_json(original))
        assert restored.ftq_occupancy_hist == {0: 10, 4: 20}
        assert restored.prefetch_lead_hist == {12: 4}
        assert restored == original

    def test_malformed_json_rejected(self):
        with pytest.raises(ReproError):
            result_from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(ReproError):
            result_from_dict({"name": "w"})


class TestSchemaVersioning:
    def _live_result(self, small_trace):
        from repro.config import SimConfig
        from repro.sim.simulator import Simulator

        config = SimConfig().replace(telemetry_window=256)
        return Simulator(small_trace, config).run()

    def test_payload_carries_schema_version(self):
        from repro.sim.serialize import SCHEMA_VERSION

        payload = result_to_dict(make_result())
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_v1_payload_migrates_to_no_telemetry(self):
        """Pre-telemetry payloads (no version field) still load."""
        payload = result_to_dict(make_result())
        del payload["schema_version"]
        del payload["telemetry"]
        restored = result_from_dict(payload)
        assert restored.telemetry is None
        assert restored.cycles == 1000

    def test_newer_schema_rejected(self):
        payload = result_to_dict(make_result())
        payload["schema_version"] = 99
        with pytest.raises(ReproError, match="newer"):
            result_from_dict(payload)

    def test_bad_schema_version_rejected(self):
        payload = result_to_dict(make_result())
        payload["schema_version"] = "two"
        with pytest.raises(ReproError):
            result_from_dict(payload)

    def test_telemetry_roundtrip_full(self, small_trace):
        """A live result — tree, meta, and interval series — survives
        JSON byte-for-byte, including telemetry equality."""
        original = self._live_result(small_trace)
        assert original.telemetry is not None
        assert original.telemetry.intervals is not None
        restored = result_from_json(result_to_json(original))
        assert restored.telemetry == original.telemetry
        assert restored == original

    def test_telemetry_none_roundtrip(self):
        original = make_result()   # constructed directly: no snapshot
        restored = result_from_json(result_to_json(original))
        assert restored.telemetry is None
        assert restored == original


class TestResultStore:
    def test_store_and_load(self, tmp_path):
        store = ResultStore(tmp_path)
        config = technique_config("none")
        result = make_result()
        store.store("w", config, 1000, 1, result)
        loaded = store.load("w", config, 1000, 1)
        assert loaded == result

    def test_distinct_identities_distinct_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        result = make_result()
        store.store("w", technique_config("none"), 1000, 1, result)
        assert store.load("w", technique_config("nlp"), 1000, 1) is None
        assert store.load("w", technique_config("none"), 2000, 1) is None
        assert store.load("x", technique_config("none"), 1000, 1) is None

    def test_corrupt_entry_ignored_and_removed(self, tmp_path):
        store = ResultStore(tmp_path)
        config = technique_config("none")
        store.store("w", config, 1000, 1, make_result())
        victim = next(tmp_path.glob("*.result.json"))
        victim.write_text("garbage")
        assert store.load("w", config, 1000, 1) is None
        assert not victim.exists()

    def test_undecodable_entry_quarantined(self, tmp_path):
        # A flipped byte can break UTF-8 itself, not just the JSON or
        # the checksum; that must quarantine too, never raise.
        store = ResultStore(tmp_path)
        config = technique_config("none")
        store.store("w", config, 1000, 1, make_result())
        victim = next(tmp_path.glob("*.result.json"))
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] = 0xA3
        victim.write_bytes(bytes(blob))
        assert store.load("w", config, 1000, 1) is None
        assert not victim.exists()
        assert store.quarantined == 1
        assert [p.name for p in store.quarantined_files()] == [victim.name]

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store("w", technique_config("none"), 1000, 1, make_result())
        assert store.clear() == 1
        assert store.clear() == 0


class TestRunnerPersistence:
    def test_second_runner_reuses_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
        config = technique_config("none")
        first = Runner(trace_length=2500,
                       persist_dir=str(tmp_path / "results"))
        a = first.run("compress_like", config)
        second = Runner(trace_length=2500,
                        persist_dir=str(tmp_path / "results"))
        b = second.run("compress_like", config)
        assert a == b
        assert second.runs_performed == 1   # loaded, then memoized

    def test_env_var_activates_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))
        monkeypatch.setenv("REPRO_RESULT_CACHE",
                           str(tmp_path / "results"))
        runner = Runner(trace_length=2500)
        runner.run("compress_like", technique_config("none"))
        assert list((tmp_path / "results").glob("*.result.json"))
