"""End-to-end simulator integration tests."""

import pytest

from repro import (
    FilterMode,
    PrefetchConfig,
    PrefetcherKind,
    SimConfig,
    simulate,
)
from repro.errors import SimulationError


def config_for(kind, filter_mode=FilterMode.ENQUEUE, **kw):
    return SimConfig(prefetch=PrefetchConfig(kind=kind,
                                             filter_mode=filter_mode), **kw)


@pytest.fixture(scope="module", params=list(PrefetcherKind.ALL))
def any_result(request, small_trace_module):
    return simulate(small_trace_module, config_for(request.param))


@pytest.fixture(scope="module")
def small_trace_module():
    from repro.cfg import ProgramShape, generate_program
    from repro.trace import Trace
    shape = ProgramShape(target_instrs=2048, n_functions=16,
                         n_levels=5, dispatcher_fanout=4)
    program = generate_program(shape, seed=42, name="small")
    return Trace.from_program(program, 12_000, seed=7)


class TestCompletion:
    def test_all_instructions_retired(self, any_result,
                                      small_trace_module):
        assert any_result.instructions == len(small_trace_module)

    def test_positive_ipc(self, any_result):
        assert 0.05 < any_result.ipc <= 8.0

    def test_counters_present(self, any_result):
        assert any_result.get("backend.retired") == \
            any_result.instructions


class TestDeterminism:
    def test_same_inputs_same_result(self, small_trace_module):
        config = config_for(PrefetcherKind.FDIP)
        a = simulate(small_trace_module, config)
        b = simulate(small_trace_module, config)
        assert a.cycles == b.cycles
        assert a.counters == b.counters


class TestOrderings:
    """The paper's qualitative results on a small generated workload."""

    @pytest.fixture(scope="class")
    def results(self, small_trace_module):
        return {
            kind: simulate(small_trace_module, config_for(kind))
            for kind in PrefetcherKind.ALL
        }

    def test_prefetching_never_hurts_here(self, results):
        base = results[PrefetcherKind.NONE].ipc
        for kind in (PrefetcherKind.NLP, PrefetcherKind.STREAM,
                     PrefetcherKind.FDIP):
            assert results[kind].ipc >= base * 0.98

    def test_fdip_beats_baselines(self, results):
        assert results[PrefetcherKind.FDIP].ipc >= \
            results[PrefetcherKind.NLP].ipc
        assert results[PrefetcherKind.FDIP].ipc >= \
            results[PrefetcherKind.STREAM].ipc

    def test_fdip_reduces_misses(self, results):
        assert results[PrefetcherKind.FDIP].l1i_mpki < \
            results[PrefetcherKind.NONE].l1i_mpki

    def test_prefetchers_use_bus(self, results):
        assert results[PrefetcherKind.FDIP].bus_utilization > \
            results[PrefetcherKind.NONE].bus_utilization


class TestFiltering:
    def test_filtering_cuts_bus_traffic(self, small_trace_module):
        unfiltered = simulate(
            small_trace_module,
            config_for(PrefetcherKind.FDIP, FilterMode.NONE))
        ideal = simulate(
            small_trace_module,
            config_for(PrefetcherKind.FDIP, FilterMode.IDEAL))
        assert ideal.bus_utilization < unfiltered.bus_utilization
        assert ideal.prefetch_accuracy >= unfiltered.prefetch_accuracy

    def test_enqueue_between_none_and_ideal(self, small_trace_module):
        results = {
            mode: simulate(small_trace_module,
                                 config_for(PrefetcherKind.FDIP, mode))
            for mode in FilterMode.ALL
        }
        assert results[FilterMode.IDEAL].bus_utilization <= \
            results[FilterMode.ENQUEUE].bus_utilization
        assert results[FilterMode.ENQUEUE].bus_utilization <= \
            results[FilterMode.NONE].bus_utilization


class TestOptions:
    def test_max_instructions_truncates(self, small_trace_module):
        config = config_for(PrefetcherKind.NONE).replace(
            max_instructions=1000)
        result = simulate(small_trace_module, config)
        assert result.instructions == 1000

    def test_warmup_shrinks_measured_instructions(self,
                                                  small_trace_module):
        config = config_for(PrefetcherKind.NONE).replace(
            warmup_instructions=2000)
        result = simulate(small_trace_module, config)
        # Measurement starts once >= 2000 instructions have retired, so
        # the measured region is the remainder (up to one retire group
        # of slack).
        assert result.instructions < len(small_trace_module)
        assert result.instructions >= len(small_trace_module) - 2000 - 64

    def test_cycle_cap_detects_deadlock(self, small_trace_module):
        config = config_for(PrefetcherKind.NONE).replace(max_cycles=10)
        with pytest.raises(SimulationError):
            simulate(small_trace_module, config)

    def test_wrong_path_off_still_completes(self, small_trace_module):
        import dataclasses
        config = config_for(PrefetcherKind.FDIP)
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, model_wrong_path=False))
        result = simulate(small_trace_module, config)
        assert result.instructions == len(small_trace_module)
        assert result.get("predict.wrong_path_blocks") == 0

    def test_single_entry_ftq_completes(self, small_trace_module):
        import dataclasses
        config = config_for(PrefetcherKind.FDIP)
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, ftq_depth=1))
        result = simulate(small_trace_module, config)
        assert result.instructions == len(small_trace_module)
        # With no lookahead there are no prefetch candidates.
        assert result.prefetches_issued == 0


class TestInvariantCounters:
    def test_useful_prefetches_bounded_by_issued(self, small_trace_module):
        result = simulate(small_trace_module,
                                config_for(PrefetcherKind.FDIP))
        assert result.prefetches_useful <= result.prefetches_issued

    def test_bus_utilization_bounded(self, small_trace_module):
        for kind in PrefetcherKind.ALL:
            result = simulate(small_trace_module, config_for(kind))
            assert 0.0 <= result.bus_utilization <= 1.0

    def test_squashes_match_resolutions(self, small_trace_module):
        result = simulate(small_trace_module,
                                config_for(PrefetcherKind.FDIP))
        assert result.get("sim.squashes") == \
            result.get("predict.resolutions")
        assert result.get("predict.mispredicts") == \
            result.get("predict.resolutions")


class TestKitchenSink:
    """Every optional feature enabled at once must still be consistent."""

    def test_all_features_together(self, small_trace_module):
        import dataclasses
        from repro.sim import check_invariants

        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP, filter_mode=FilterMode.REMOVE,
            min_lookahead=2, max_lookahead=16))
        predictor = dataclasses.replace(
            config.frontend.predictor, direction="local",
            ftb_sets=32, ftb_ways=2, ftb_l2_sets=256, ftb_l2_latency=2)
        frontend = dataclasses.replace(
            config.frontend, predictor=predictor,
            perfect_direction=False, ftq_depth=24)
        core = dataclasses.replace(config.core,
                                   fetch_accesses_per_cycle=2)
        config = config.replace(frontend=frontend, core=core,
                                fast_forward_instructions=2000)
        result = simulate(small_trace_module, config)
        assert result.instructions == len(small_trace_module) - 2000
        assert check_invariants(result, warmed_up=True) == []

    def test_combined_with_two_level_ftb(self, small_trace_module):
        import dataclasses
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.COMBINED))
        predictor = dataclasses.replace(
            config.frontend.predictor, ftb_sets=16, ftb_ways=2,
            ftb_l2_sets=128)
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, predictor=predictor))
        result = simulate(small_trace_module, config)
        assert result.instructions == len(small_trace_module)
