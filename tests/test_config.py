"""Configuration dataclass validation."""

import dataclasses

import pytest

from repro.config import (
    CacheGeometry,
    CoreConfig,
    FilterMode,
    FrontEndConfig,
    MemoryConfig,
    PredictorConfig,
    PrefetchConfig,
    PrefetcherKind,
    SimConfig,
    is_power_of_two,
)
from repro.errors import ConfigError


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 1 << 20])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, -2, 3, 6, 12, 1023])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestCoreConfig:
    def test_defaults_valid(self):
        core = CoreConfig()
        assert core.fetch_width == 8
        assert core.window_size >= core.issue_width

    @pytest.mark.parametrize("field,value", [
        ("fetch_width", 0),
        ("issue_width", 0),
        ("pipeline_depth", 0),
        ("branch_resolve_latency", 0),
        ("load_latency", 0),
    ])
    def test_rejects_nonpositive(self, field, value):
        with pytest.raises(ConfigError):
            CoreConfig(**{field: value})

    def test_window_smaller_than_issue_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=8, window_size=4)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CoreConfig().fetch_width = 4


class TestPredictorConfig:
    def test_defaults_valid(self):
        PredictorConfig()

    @pytest.mark.parametrize("field", [
        "bimodal_entries", "gshare_entries", "meta_entries", "ftb_sets"])
    def test_table_sizes_must_be_pow2(self, field):
        with pytest.raises(ConfigError):
            PredictorConfig(**{field: 1000})

    def test_history_bits_bounds(self):
        with pytest.raises(ConfigError):
            PredictorConfig(history_bits=0)
        with pytest.raises(ConfigError):
            PredictorConfig(history_bits=31)

    def test_ras_depth_positive(self):
        with pytest.raises(ConfigError):
            PredictorConfig(ras_depth=0)


class TestCacheGeometry:
    def test_basic_properties(self):
        geometry = CacheGeometry(size_bytes=16 * 1024, assoc=2,
                                 block_bytes=32)
        assert geometry.num_sets == 256
        assert geometry.num_blocks == 512

    def test_block_bytes_pow2(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=16 * 1024, assoc=2, block_bytes=48)

    def test_size_divisibility(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1000, assoc=2, block_bytes=32)

    def test_sets_must_be_pow2(self):
        # 3 * 32 * 2 divides evenly but leaves a non-pow2 set count.
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=3 * 32 * 2, assoc=2, block_bytes=32)

    def test_fully_associative_one_set(self):
        geometry = CacheGeometry(size_bytes=32 * 32, assoc=32,
                                 block_bytes=32)
        assert geometry.num_sets == 1


class TestMemoryConfig:
    def test_defaults_valid(self):
        memory = MemoryConfig()
        assert memory.icache.size_bytes == 16 * 1024

    def test_memory_latency_floor(self):
        with pytest.raises(ConfigError):
            MemoryConfig(l2_hit_latency=20, memory_latency=10)

    def test_block_size_agreement(self):
        with pytest.raises(ConfigError):
            MemoryConfig(
                icache=CacheGeometry(size_bytes=16 * 1024, assoc=2,
                                     block_bytes=32),
                l2=CacheGeometry(size_bytes=1024 * 1024, assoc=4,
                                 block_bytes=64))

    def test_tag_ports_positive(self):
        with pytest.raises(ConfigError):
            MemoryConfig(icache_tag_ports=0)


class TestPrefetchConfig:
    def test_defaults_valid(self):
        config = PrefetchConfig()
        assert config.kind == PrefetcherKind.FDIP

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(kind="teleport")

    def test_unknown_filter_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(filter_mode="psychic")

    @pytest.mark.parametrize("kind", PrefetcherKind.ALL)
    def test_all_kinds_accepted(self, kind):
        assert PrefetchConfig(kind=kind).kind == kind

    @pytest.mark.parametrize("mode", FilterMode.ALL)
    def test_all_filter_modes_accepted(self, mode):
        assert PrefetchConfig(filter_mode=mode).filter_mode == mode

    @pytest.mark.parametrize("field", [
        "buffer_entries", "piq_depth", "max_prefetches_per_cycle",
        "stream_buffers", "stream_depth", "nlp_degree"])
    def test_positive_fields(self, field):
        with pytest.raises(ConfigError):
            PrefetchConfig(**{field: 0})


class TestSimConfig:
    def test_defaults_valid(self):
        SimConfig()

    def test_replace_returns_new(self):
        config = SimConfig()
        changed = config.replace(warmup_instructions=100)
        assert changed.warmup_instructions == 100
        assert config.warmup_instructions == 0

    def test_hashable_for_memoization(self):
        a = SimConfig()
        b = SimConfig()
        assert hash(a) == hash(b)
        assert a == b

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(warmup_instructions=-1)

    def test_max_instructions_validated(self):
        with pytest.raises(ConfigError):
            SimConfig(max_instructions=0)

    def test_max_cycles_validated(self):
        with pytest.raises(ConfigError):
            SimConfig(max_cycles=0)


class TestFrontEndConfig:
    def test_defaults(self):
        frontend = FrontEndConfig()
        assert frontend.ftq_depth == 32

    def test_ftq_depth_positive(self):
        with pytest.raises(ConfigError):
            FrontEndConfig(ftq_depth=0)

    def test_max_fetch_block_positive(self):
        with pytest.raises(ConfigError):
            FrontEndConfig(max_fetch_block=0)
