"""Configuration dataclass validation."""

import dataclasses

import pytest

from repro.config import (
    CacheGeometry,
    CoreConfig,
    FilterMode,
    FrontEndConfig,
    MemoryConfig,
    PredictorConfig,
    PrefetchConfig,
    PrefetcherKind,
    SimConfig,
    is_power_of_two,
)
from repro.errors import ConfigError


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 1 << 20])
    def test_powers(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, -2, 3, 6, 12, 1023])
    def test_non_powers(self, value):
        assert not is_power_of_two(value)


class TestCoreConfig:
    def test_defaults_valid(self):
        core = CoreConfig()
        assert core.fetch_width == 8
        assert core.window_size >= core.issue_width

    @pytest.mark.parametrize("field,value", [
        ("fetch_width", 0),
        ("issue_width", 0),
        ("pipeline_depth", 0),
        ("branch_resolve_latency", 0),
        ("load_latency", 0),
    ])
    def test_rejects_nonpositive(self, field, value):
        with pytest.raises(ConfigError):
            CoreConfig(**{field: value})

    def test_window_smaller_than_issue_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=8, window_size=4)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CoreConfig().fetch_width = 4


class TestPredictorConfig:
    def test_defaults_valid(self):
        PredictorConfig()

    @pytest.mark.parametrize("field", [
        "bimodal_entries", "gshare_entries", "meta_entries", "ftb_sets"])
    def test_table_sizes_must_be_pow2(self, field):
        with pytest.raises(ConfigError):
            PredictorConfig(**{field: 1000})

    def test_history_bits_bounds(self):
        with pytest.raises(ConfigError):
            PredictorConfig(history_bits=0)
        with pytest.raises(ConfigError):
            PredictorConfig(history_bits=31)

    def test_ras_depth_positive(self):
        with pytest.raises(ConfigError):
            PredictorConfig(ras_depth=0)


class TestCacheGeometry:
    def test_basic_properties(self):
        geometry = CacheGeometry(size_bytes=16 * 1024, assoc=2,
                                 block_bytes=32)
        assert geometry.num_sets == 256
        assert geometry.num_blocks == 512

    def test_block_bytes_pow2(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=16 * 1024, assoc=2, block_bytes=48)

    def test_size_divisibility(self):
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=1000, assoc=2, block_bytes=32)

    def test_sets_must_be_pow2(self):
        # 3 * 32 * 2 divides evenly but leaves a non-pow2 set count.
        with pytest.raises(ConfigError):
            CacheGeometry(size_bytes=3 * 32 * 2, assoc=2, block_bytes=32)

    def test_fully_associative_one_set(self):
        geometry = CacheGeometry(size_bytes=32 * 32, assoc=32,
                                 block_bytes=32)
        assert geometry.num_sets == 1


class TestMemoryConfig:
    def test_defaults_valid(self):
        memory = MemoryConfig()
        assert memory.icache.size_bytes == 16 * 1024

    def test_memory_latency_floor(self):
        with pytest.raises(ConfigError):
            MemoryConfig(l2_hit_latency=20, memory_latency=10)

    def test_block_size_agreement(self):
        with pytest.raises(ConfigError):
            MemoryConfig(
                icache=CacheGeometry(size_bytes=16 * 1024, assoc=2,
                                     block_bytes=32),
                l2=CacheGeometry(size_bytes=1024 * 1024, assoc=4,
                                 block_bytes=64))

    def test_tag_ports_positive(self):
        with pytest.raises(ConfigError):
            MemoryConfig(icache_tag_ports=0)


class TestPrefetchConfig:
    def test_defaults_valid(self):
        config = PrefetchConfig()
        assert config.kind == PrefetcherKind.FDIP

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(kind="teleport")

    def test_unknown_filter_rejected(self):
        with pytest.raises(ConfigError):
            PrefetchConfig(filter_mode="psychic")

    @pytest.mark.parametrize("kind", PrefetcherKind.ALL)
    def test_all_kinds_accepted(self, kind):
        assert PrefetchConfig(kind=kind).kind == kind

    @pytest.mark.parametrize("mode", FilterMode.ALL)
    def test_all_filter_modes_accepted(self, mode):
        assert PrefetchConfig(filter_mode=mode).filter_mode == mode

    @pytest.mark.parametrize("field", [
        "buffer_entries", "piq_depth", "max_prefetches_per_cycle",
        "stream_buffers", "stream_depth", "nlp_degree"])
    def test_positive_fields(self, field):
        with pytest.raises(ConfigError):
            PrefetchConfig(**{field: 0})


class TestSimConfig:
    def test_defaults_valid(self):
        SimConfig()

    def test_replace_returns_new(self):
        config = SimConfig()
        changed = config.replace(warmup_instructions=100)
        assert changed.warmup_instructions == 100
        assert config.warmup_instructions == 0

    def test_hashable_for_memoization(self):
        a = SimConfig()
        b = SimConfig()
        assert hash(a) == hash(b)
        assert a == b

    def test_negative_warmup_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(warmup_instructions=-1)

    def test_max_instructions_validated(self):
        with pytest.raises(ConfigError):
            SimConfig(max_instructions=0)

    def test_max_cycles_validated(self):
        with pytest.raises(ConfigError):
            SimConfig(max_cycles=0)


class TestFrontEndConfig:
    def test_defaults(self):
        frontend = FrontEndConfig()
        assert frontend.ftq_depth == 32

    def test_ftq_depth_positive(self):
        with pytest.raises(ConfigError):
            FrontEndConfig(ftq_depth=0)

    def test_max_fetch_block_positive(self):
        with pytest.raises(ConfigError):
            FrontEndConfig(max_fetch_block=0)


def _exotic_config() -> SimConfig:
    """A config with every top-level field off its default."""
    return SimConfig(
        core=CoreConfig(fetch_width=4, issue_width=2),
        frontend=FrontEndConfig(
            ftq_depth=16,
            predictor=PredictorConfig(bimodal_entries=512)),
        memory=MemoryConfig(
            icache=CacheGeometry(size_bytes=8 * 1024, assoc=2,
                                 block_bytes=32),
            memory_latency=200),
        prefetch=PrefetchConfig(kind="nlp", nlp_degree=2),
        max_instructions=5_000,
        warmup_instructions=100,
        fast_forward_instructions=50,
        max_cycles=1_000_000,
        fast_loop=False,
        telemetry_window=250)


class TestConfigRoundTrip:
    @pytest.mark.parametrize("config", [
        SimConfig(),
        _exotic_config(),
    ], ids=["defaults", "exotic"])
    def test_to_dict_from_dict_round_trips(self, config):
        assert SimConfig.from_dict(config.to_dict()) == config

    def test_every_field_survives(self):
        # Field-by-field, so a future field added without to_dict
        # support fails with its name rather than a bare inequality.
        config = _exotic_config()
        rebuilt = SimConfig.from_dict(config.to_dict())
        for field in dataclasses.fields(SimConfig):
            assert getattr(rebuilt, field.name) == \
                getattr(config, field.name), field.name

    def test_dict_form_is_json_compatible(self):
        import json

        data = _exotic_config().to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_partial_dict_fills_defaults(self):
        config = SimConfig.from_dict({"warmup_instructions": 42})
        assert config.warmup_instructions == 42
        assert config.core == CoreConfig()

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigError, match="warmup_instrs"):
            SimConfig.from_dict({"warmup_instrs": 42})

    def test_unknown_nested_key_names_full_path(self):
        with pytest.raises(ConfigError, match="memory.icache.sets"):
            SimConfig.from_dict(
                {"memory": {"icache": {"sets": 4}}})

    def test_from_dict_revalidates(self):
        data = SimConfig().to_dict()
        data["warmup_instructions"] = -1
        with pytest.raises(ConfigError):
            SimConfig.from_dict(data)

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="mapping"):
            SimConfig.from_dict({"prefetch": "fdip"})


class TestWithOverrides:
    def test_dotted_key(self):
        config = SimConfig().with_overrides(**{"prefetch.kind": "none"})
        assert config.prefetch.kind == "none"

    def test_nested_dict_merges(self):
        base = SimConfig(
            prefetch=PrefetchConfig(kind="fdip", filter_mode="enqueue"))
        changed = base.with_overrides(prefetch={"kind": "none"})
        assert changed.prefetch.kind == "none"
        # Merge, not wholesale replacement: the sibling field survives.
        assert changed.prefetch.filter_mode == "enqueue"

    def test_deep_dotted_key(self):
        config = SimConfig().with_overrides(
            **{"frontend.predictor.bimodal_entries": 512})
        assert config.frontend.predictor.bimodal_entries == 512
        assert config.frontend.ftq_depth == SimConfig().frontend.ftq_depth

    def test_scalar_override(self):
        assert SimConfig().with_overrides(
            warmup_instructions=9).warmup_instructions == 9

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig().with_overrides(**{"prefetch.degree": 2})

    def test_original_untouched(self):
        base = SimConfig()
        base.with_overrides(**{"prefetch.kind": "none"})
        assert base.prefetch.kind == PrefetcherKind.FDIP
