"""Prediction unit: trace-driven prediction, validation, and recovery."""

import pytest

from repro.bpred import HybridPredictor, ReturnAddressStack
from repro.config import FrontEndConfig, PredictorConfig
from repro.frontend import FetchTargetQueue, PredictUnit
from repro.ftb import FetchTargetBuffer
from tests.conftest import TraceBuilder

BASE = 0x40_0000
CAP = 8  # max fetch block used in these tests


def make_unit(trace, ftq_depth=8, model_wrong_path=True,
              max_fetch_block=CAP):
    config = FrontEndConfig(
        ftq_depth=ftq_depth,
        max_fetch_block=max_fetch_block,
        model_wrong_path=model_wrong_path,
        predictor=PredictorConfig(bimodal_entries=256, gshare_entries=256,
                                  history_bits=6, meta_entries=256,
                                  ras_depth=8, ftb_sets=64, ftb_ways=2),
    )
    ftb = FetchTargetBuffer(64, 2)
    predictor = HybridPredictor(256, 256, 6, 256)
    ras = ReturnAddressStack(8)
    unit = PredictUnit(trace, ftb, predictor, ras, config)
    return unit, FetchTargetQueue(ftq_depth)


def drain_to_resolution(unit, ftq, entry):
    """Simulate fetch+resolve of a mispredicted entry in a unit test."""
    while not ftq.empty:
        head = ftq.pop_head()
        if head is entry:
            break
    remaining = ftq.clear()
    unit.on_resolve(entry)
    return remaining


class TestSequentialPrediction:
    def test_pure_sequential_blocks(self, tb):
        trace = tb.seq(32).build()
        unit, ftq = make_unit(trace)
        first = unit.tick(1, ftq)
        assert first is not None
        assert not first.mispredict
        assert first.start == BASE
        assert first.n_instrs == CAP
        second = unit.tick(2, ftq)
        assert second.start == BASE + CAP * 4

    def test_covers_whole_trace_without_mispredicts(self, tb):
        trace = tb.seq(40).build()
        unit, ftq = make_unit(trace, ftq_depth=32)
        produced = 0
        cycle = 0
        while not unit.done:
            cycle += 1
            if unit.tick(cycle, ftq):
                produced += 1
        total = sum(e.n_records for e in ftq)
        assert total == 40
        assert unit.stats.get("mispredicts") == 0

    def test_trace_records_attached(self, tb):
        trace = tb.seq(20).build()
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        assert entry.first_index == 0
        assert entry.n_records == CAP

    def test_ftq_full_stalls(self, tb):
        trace = tb.seq(64).build()
        unit, ftq = make_unit(trace, ftq_depth=2)
        assert unit.tick(1, ftq) is not None
        assert unit.tick(2, ftq) is not None
        assert unit.tick(3, ftq) is None
        assert unit.stats.get("ftq_full_stalls") == 1


class TestTakenBranchLearning:
    def loop_trace(self, iterations):
        """taken backward jump loop: 4 instrs then jump back."""
        builder = TraceBuilder(BASE)
        for _ in range(iterations):
            builder.seq(3).jump(BASE)
        builder.seq(4)
        return builder.build()

    def test_first_encounter_is_ftb_miss(self):
        trace = self.loop_trace(3)
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        assert entry.mispredict
        assert unit.stats.get("mispredict_ftb_miss") == 1
        assert entry.true_next == BASE

    def test_ftb_trained_after_resolution(self):
        trace = self.loop_trace(3)
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        drain_to_resolution(unit, ftq, entry)
        second = unit.tick(10, ftq)
        assert not second.mispredict
        assert second.start == BASE
        assert second.n_instrs == 4
        assert second.predicted_next == BASE

    def test_resume_cursor_continues_exactly(self):
        trace = self.loop_trace(2)
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        assert entry.n_records == 4
        drain_to_resolution(unit, ftq, entry)
        nxt = unit.tick(5, ftq)
        assert nxt.first_index == 4


class TestWrongPath:
    def test_wrong_path_blocks_produced_until_resolve(self, tb):
        trace = tb.seq(3).jump(BASE + 0x1000).seq(8).build()
        unit, ftq = make_unit(trace)
        mispredicted = unit.tick(1, ftq)
        assert mispredicted.mispredict
        wrong = unit.tick(2, ftq)
        assert wrong.wrong_path
        # FTB miss on wrong path: sequential cap block from predicted pc.
        assert wrong.start == mispredicted.predicted_next
        wrong2 = unit.tick(3, ftq)
        assert wrong2.start == wrong.predicted_next

    def test_stall_mode_produces_nothing(self, tb):
        trace = tb.seq(3).jump(BASE + 0x1000).seq(8).build()
        unit, ftq = make_unit(trace, model_wrong_path=False)
        entry = unit.tick(1, ftq)
        assert entry.mispredict
        assert unit.tick(2, ftq) is None
        assert unit.stats.get("mispredict_stall_cycles") == 1

    def test_resolution_restores_and_resumes(self, tb):
        trace = tb.seq(3).jump(BASE + 0x1000).seq(8).build()
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        unit.tick(2, ftq)   # wrong path
        unit.tick(3, ftq)   # wrong path
        drain_to_resolution(unit, ftq, entry)
        resumed = unit.tick(4, ftq)
        assert not resumed.wrong_path
        assert resumed.start == BASE + 0x1000

    def test_only_one_pending_mispredict(self, tb):
        trace = tb.seq(3).jump(BASE + 0x1000).seq(8).build()
        unit, ftq = make_unit(trace)
        unit.tick(1, ftq)
        assert unit.awaiting_resolution
        for cycle in range(2, 6):
            produced = unit.tick(cycle, ftq)
            assert produced.wrong_path
            assert not produced.mispredict


class TestReturnPrediction:
    def call_return_trace(self, repeats):
        """main loop: call f (at BASE+0x100), f returns, jump back."""
        builder = TraceBuilder(BASE)
        for _ in range(repeats):
            builder.seq(1)
            builder.call(BASE + 0x100)
            builder.seq(2)                  # f body
            builder.ret(BASE + 0x8)         # back after call
            builder.jump(BASE)
        builder.seq(1)
        return builder.build()

    def resolve_all(self, unit, ftq, cycles=200):
        mispredicts = 0
        cycle = 0
        while not unit.done and cycle < cycles:
            cycle += 1
            entry = unit.tick(cycle, ftq)
            if entry is not None and entry.mispredict:
                mispredicts += 1
                drain_to_resolution(unit, ftq, entry)
            elif ftq.full:
                while not ftq.empty:
                    ftq.pop_head()
        return mispredicts

    def test_returns_learned_via_ras(self):
        trace = self.call_return_trace(6)
        unit, ftq = make_unit(trace)
        mispredicts = self.resolve_all(unit, ftq)
        # First iteration discovers call/return/jump blocks; later
        # iterations should predict returns through the RAS without
        # further mispredicts.
        assert unit.done
        assert mispredicts <= 4

    def test_trace_fully_covered(self):
        trace = self.call_return_trace(3)
        unit, ftq = make_unit(trace)
        self.resolve_all(unit, ftq)
        assert unit.done


class TestConditionalDirection:
    def test_biased_branch_learned(self):
        builder = TraceBuilder(BASE)
        # Loop: 3 seq + taken cond back to BASE, 8 iterations, then exit
        # not-taken and 4 trailing instructions.
        for _ in range(8):
            builder.seq(3).branch(BASE, taken=True)
        builder.seq(3).branch(BASE, taken=False)
        builder.seq(4)
        trace = builder.build()
        unit, ftq = make_unit(trace)

        mispredicts = 0
        cycle = 0
        while not unit.done and cycle < 300:
            cycle += 1
            entry = unit.tick(cycle, ftq)
            if entry is not None and entry.mispredict:
                mispredicts += 1
                drain_to_resolution(unit, ftq, entry)
            elif ftq.full:
                while not ftq.empty:
                    ftq.pop_head()
        assert unit.done
        # One FTB-miss mispredict at the start and one at loop exit
        # (predicted taken, actually not-taken); the taken iterations in
        # between must be predicted.
        assert mispredicts <= 3
        assert unit.stats.get("mispredict_direction") >= 1

    def test_direction_accuracy_accounted(self):
        builder = TraceBuilder(BASE)
        for _ in range(5):
            builder.seq(3).branch(BASE, taken=True)
        builder.seq(3).branch(BASE, taken=False)
        builder.seq(2)
        unit, ftq = make_unit(builder.build())
        cycle = 0
        while not unit.done and cycle < 300:
            cycle += 1
            entry = unit.tick(cycle, ftq)
            if entry is not None and entry.mispredict:
                drain_to_resolution(unit, ftq, entry)
            elif ftq.full:
                while not ftq.empty:
                    ftq.pop_head()
        assert unit.predictor.stats.get("predictions") >= 4


class TestBlockHistogram:
    def test_fetch_block_sizes_recorded(self, tb):
        trace = tb.seq(24).build()
        unit, ftq = make_unit(trace, ftq_depth=16)
        for cycle in range(1, 6):
            unit.tick(cycle, ftq)
        hist = unit.stats.histogram("fetch_block_instrs")
        assert hist.total == 3
        assert hist.mean == pytest.approx(CAP)
