"""Memory substrate: block math, cache, bus, MSHRs, prefetch buffer."""

import pytest

from repro.config import CacheGeometry
from repro.memory import (
    Bus,
    MshrFile,
    PrefetchBuffer,
    SetAssociativeCache,
    block_base,
    block_id,
    blocks_spanning,
)


class TestBlockMath:
    def test_block_id(self):
        assert block_id(0, 32) == 0
        assert block_id(31, 32) == 0
        assert block_id(32, 32) == 1

    def test_block_base(self):
        assert block_base(3, 32) == 96

    def test_blocks_spanning_within_one(self):
        assert list(blocks_spanning(0, 32, 32)) == [0]
        assert list(blocks_spanning(4, 28, 32)) == [0]

    def test_blocks_spanning_straddle(self):
        assert list(blocks_spanning(28, 40, 32)) == [0, 1]

    def test_blocks_spanning_exact_boundary(self):
        # [32, 64) is exactly block 1.
        assert list(blocks_spanning(32, 64, 32)) == [1]

    def test_blocks_spanning_empty(self):
        assert list(blocks_spanning(10, 10, 32)) == []
        assert list(blocks_spanning(20, 10, 32)) == []


class TestSetAssociativeCache:
    @pytest.fixture
    def cache(self):
        # 2 sets x 2 ways.
        return SetAssociativeCache(
            CacheGeometry(size_bytes=128, assoc=2, block_bytes=32))

    def test_miss_then_fill_then_hit(self, cache):
        assert not cache.lookup(0)
        cache.fill(0)
        assert cache.lookup(0)

    def test_lru_eviction(self, cache):
        # Set 0 holds even block ids (2 sets).
        cache.fill(0)
        cache.fill(2)
        cache.lookup(0)        # 2 becomes LRU
        victim = cache.fill(4)
        assert victim == 2
        assert cache.contains(0)
        assert not cache.contains(2)

    def test_fill_refreshes_recency(self, cache):
        cache.fill(0)
        cache.fill(2)
        cache.fill(0)          # refresh, no eviction
        victim = cache.fill(4)
        assert victim == 2

    def test_probe_does_not_touch_lru(self, cache):
        cache.fill(0)
        cache.fill(2)
        cache.probe(0)         # must NOT refresh 0
        victim = cache.fill(4)
        assert victim == 0

    def test_sets_are_independent(self, cache):
        cache.fill(0)
        cache.fill(1)   # odd -> other set
        cache.fill(2)
        cache.fill(4)   # evicts from set 0 only
        assert cache.contains(1)

    def test_invalidate(self, cache):
        cache.fill(0)
        assert cache.invalidate(0)
        assert not cache.contains(0)
        assert not cache.invalidate(0)

    def test_flush_preserves_stats(self, cache):
        cache.fill(0)
        cache.lookup(0)
        cache.flush()
        assert cache.resident_blocks() == 0
        assert cache.stats.get("hits") == 1

    def test_stats_counts(self, cache):
        cache.lookup(0)
        cache.fill(0)
        cache.lookup(0)
        assert cache.stats.get("misses") == 1
        assert cache.stats.get("hits") == 1
        assert cache.stats.get("fills") == 1


class TestBus:
    def test_demand_queues_behind_busy(self):
        bus = Bus(transfer_cycles=4)
        first = bus.acquire_demand(10)
        second = bus.acquire_demand(11)
        assert first == 10
        assert second == 14          # waits for the first transfer

    def test_prefetch_requires_idle(self):
        bus = Bus(transfer_cycles=4)
        bus.acquire_demand(10)
        assert bus.try_acquire_prefetch(12) is None
        assert bus.try_acquire_prefetch(14) == 14

    def test_prefetch_occupies(self):
        bus = Bus(transfer_cycles=4)
        assert bus.try_acquire_prefetch(0) == 0
        assert bus.try_acquire_prefetch(2) is None
        demand = bus.acquire_demand(2)
        assert demand == 4            # demand queues behind prefetch

    def test_utilization(self):
        bus = Bus(transfer_cycles=4)
        bus.acquire_demand(0)
        assert bus.utilization(8) == pytest.approx(0.5)
        assert bus.utilization(0) == 0.0

    def test_rejects_bad_transfer(self):
        with pytest.raises(ValueError):
            Bus(transfer_cycles=0)

    def test_wait_cycles_recorded(self):
        bus = Bus(transfer_cycles=4)
        bus.acquire_demand(0)
        bus.acquire_demand(1)
        assert bus.stats.get("demand_wait_cycles") == 3


class TestMshrFile:
    def test_allocate_and_release(self):
        mshrs = MshrFile(capacity=2)
        mshrs.allocate(5, ready_cycle=100, is_prefetch=False)
        assert mshrs.get(5) is not None
        released = mshrs.release(5)
        assert released.bid == 5
        assert mshrs.get(5) is None

    def test_capacity_enforced(self):
        mshrs = MshrFile(capacity=1)
        mshrs.allocate(1, 10, is_prefetch=False)
        assert mshrs.full
        with pytest.raises(OverflowError):
            mshrs.allocate(2, 10, is_prefetch=False)

    def test_duplicate_allocation_rejected(self):
        mshrs = MshrFile(capacity=4)
        mshrs.allocate(1, 10, is_prefetch=False)
        with pytest.raises(KeyError):
            mshrs.allocate(1, 12, is_prefetch=True)

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            MshrFile(capacity=2).release(9)

    def test_merge_marks_entry_and_counts_late(self):
        mshrs = MshrFile(capacity=2)
        mshrs.allocate(1, 10, is_prefetch=True)
        entry = mshrs.merge_demand(1)
        assert entry.demand_merged
        assert mshrs.stats.get("late_prefetch_merges") == 1

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            MshrFile(capacity=0)


class TestPrefetchBuffer:
    def test_fifo_eviction(self):
        buffer = PrefetchBuffer(2)
        buffer.insert(1)
        buffer.insert(2)
        victim = buffer.insert(3)
        assert victim == 1
        assert buffer.resident() == [2, 3]

    def test_claim_removes(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(7)
        assert buffer.claim(7)
        assert not buffer.contains(7)
        assert not buffer.claim(7)
        assert buffer.stats.get("useful_hits") == 1

    def test_duplicate_insert_no_eviction(self):
        buffer = PrefetchBuffer(2)
        buffer.insert(1)
        buffer.insert(2)
        assert buffer.insert(1) is None
        assert len(buffer) == 2

    def test_eviction_counts_unused(self):
        buffer = PrefetchBuffer(1)
        buffer.insert(1, wrong_path=True)
        buffer.insert(2)
        assert buffer.stats.get("evicted_unused") == 1
        assert buffer.stats.get("evicted_unused_wrong_path") == 1

    def test_flush(self):
        buffer = PrefetchBuffer(4)
        buffer.insert(1)
        buffer.flush()
        assert len(buffer) == 0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(0)
