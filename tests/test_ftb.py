"""Fetch target buffer and conventional BTB."""

import pytest

from repro.errors import ConfigError
from repro.ftb import BranchTargetBuffer, BTBEntry, FetchTargetBuffer, \
    FTBEntry
from repro.isa import InstrKind


def entry(start, n_instrs=4, target=0x40_8000,
          kind=InstrKind.BRANCH_COND) -> FTBEntry:
    return FTBEntry(start=start, fallthrough=start + 4 * n_instrs,
                    target=target, kind=kind)


class TestFTBEntry:
    def test_terminator_position(self):
        e = entry(0x40_0000, n_instrs=4)
        assert e.terminator_pc == 0x40_000C
        assert e.n_instrs == 4


class TestFetchTargetBuffer:
    def test_miss_then_hit(self):
        ftb = FetchTargetBuffer(sets=16, ways=2)
        assert ftb.lookup(0x40_0000) is None
        ftb.install(entry(0x40_0000))
        hit = ftb.lookup(0x40_0000)
        assert hit is not None
        assert hit.target == 0x40_8000

    def test_update_replaces_in_place(self):
        ftb = FetchTargetBuffer(sets=16, ways=2)
        ftb.install(entry(0x40_0000, target=0x40_8000))
        ftb.install(entry(0x40_0000, target=0x40_9000))
        assert ftb.lookup(0x40_0000).target == 0x40_9000
        assert ftb.resident_entries() == 1

    def test_lru_eviction_order(self):
        ftb = FetchTargetBuffer(sets=1, ways=2)
        a, b, c = 0x40_0000, 0x40_0100, 0x40_0200
        ftb.install(entry(a))
        ftb.install(entry(b))
        ftb.lookup(a)               # refresh a -> b is LRU
        ftb.install(entry(c))       # evicts b
        assert ftb.lookup(a) is not None
        assert ftb.lookup(b) is None
        assert ftb.lookup(c) is not None

    def test_set_isolation(self):
        ftb = FetchTargetBuffer(sets=2, ways=1)
        even = 0x40_0000      # word index even -> set 0
        odd = 0x40_0004       # set 1
        ftb.install(entry(even))
        ftb.install(entry(odd))
        assert ftb.resident_entries() == 2

    def test_capacity(self):
        ftb = FetchTargetBuffer(sets=8, ways=4)
        assert ftb.capacity == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            FetchTargetBuffer(sets=12, ways=2)
        with pytest.raises(ConfigError):
            FetchTargetBuffer(sets=16, ways=0)

    def test_rejects_empty_extent(self):
        ftb = FetchTargetBuffer(sets=16, ways=2)
        bad = FTBEntry(start=0x40_0000, fallthrough=0x40_0000,
                       target=0, kind=InstrKind.JUMP_DIRECT)
        with pytest.raises(ConfigError):
            ftb.install(bad)

    def test_stats(self):
        ftb = FetchTargetBuffer(sets=16, ways=2)
        ftb.lookup(0x40_0000)
        ftb.install(entry(0x40_0000))
        ftb.lookup(0x40_0000)
        assert ftb.stats.get("misses") == 1
        assert ftb.stats.get("hits") == 1
        assert ftb.stats.get("installs") == 1


class TestBranchTargetBuffer:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        assert btb.lookup(0x40_0000) is None
        btb.install(BTBEntry(pc=0x40_0000, target=0x40_8000,
                             kind=InstrKind.JUMP_DIRECT))
        assert btb.lookup(0x40_0000).target == 0x40_8000

    def test_lru_eviction(self):
        btb = BranchTargetBuffer(sets=1, ways=2)
        for pc in (0x40_0000, 0x40_0100, 0x40_0200):
            btb.install(BTBEntry(pc=pc, target=0,
                                 kind=InstrKind.JUMP_DIRECT))
        assert btb.lookup(0x40_0000) is None
        assert btb.lookup(0x40_0200) is not None

    def test_update_counts(self):
        btb = BranchTargetBuffer(sets=16, ways=2)
        btb.install(BTBEntry(pc=0x40_0000, target=1 * 4,
                             kind=InstrKind.JUMP_DIRECT))
        btb.install(BTBEntry(pc=0x40_0000, target=2 * 4,
                             kind=InstrKind.JUMP_DIRECT))
        assert btb.stats.get("updates") == 1
        assert btb.resident_entries() == 1

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigError):
            BranchTargetBuffer(sets=3, ways=2)
