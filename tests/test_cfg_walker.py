"""Trace walker semantics."""


from repro.cfg import (
    MAX_CALL_DEPTH,
    ProgramShape,
    TraceWalker,
    generate_program,
)
from repro.cfg.model import TEXT_BASE, BasicBlock, Function, Program
from repro.isa import INSTRUCTION_BYTES, InstrKind, StaticInstr


def build_loop_program(trips: int) -> Program:
    """main: B0 body(1) + loop-branch back to B0, then return block."""
    b0 = BasicBlock(
        start=TEXT_BASE,
        instrs=[StaticInstr(TEXT_BASE, InstrKind.ALU),
                StaticInstr(TEXT_BASE + 4, InstrKind.BRANCH_COND,
                            TEXT_BASE)],
        fallthrough=TEXT_BASE + 8,
        loop_trips=trips,
        taken_bias=0.9,
    )
    b1 = BasicBlock(
        start=TEXT_BASE + 8,
        instrs=[StaticInstr(TEXT_BASE + 8, InstrKind.RETURN)],
        fallthrough=None,
    )
    return Program([Function(name="main", blocks=[b0, b1])])


def build_call_program() -> Program:
    """main calls f1 then returns; f1 returns immediately."""
    main_b0 = BasicBlock(
        start=TEXT_BASE,
        instrs=[StaticInstr(TEXT_BASE, InstrKind.CALL, TEXT_BASE + 8)],
        fallthrough=TEXT_BASE + 4,
    )
    main_b1 = BasicBlock(
        start=TEXT_BASE + 4,
        instrs=[StaticInstr(TEXT_BASE + 4, InstrKind.RETURN)],
        fallthrough=None,
    )
    f1_b0 = BasicBlock(
        start=TEXT_BASE + 8,
        instrs=[StaticInstr(TEXT_BASE + 8, InstrKind.RETURN)],
        fallthrough=None,
    )
    return Program([
        Function(name="main", blocks=[main_b0, main_b1]),
        Function(name="f1", blocks=[f1_b0]),
    ])


class TestLoopSemantics:
    def test_trip_count_pattern(self):
        program = build_loop_program(trips=3)
        walker = TraceWalker(program, seed=0)
        records = walker.walk(20)
        outcomes = [r.taken for r in records
                    if r.kind == InstrKind.BRANCH_COND][:6]
        # taken twice, not-taken once, repeating (trips=3).
        assert outcomes == [True, True, False, True, True, False]

    def test_loop_body_replays(self):
        program = build_loop_program(trips=2)
        walker = TraceWalker(program, seed=0)
        records = walker.walk(5)
        assert [r.pc for r in records] == [
            TEXT_BASE, TEXT_BASE + 4,       # body + taken branch
            TEXT_BASE, TEXT_BASE + 4,       # body + not-taken branch
            TEXT_BASE + 8,                  # return
        ]


class TestCallReturn:
    def test_return_pops_to_call_site(self):
        program = build_call_program()
        walker = TraceWalker(program, seed=0)
        records = walker.walk(3)
        assert records[0].kind == InstrKind.CALL
        assert records[0].next_pc == TEXT_BASE + 8
        assert records[1].kind == InstrKind.RETURN
        assert records[1].next_pc == TEXT_BASE + 4   # back after the call

    def test_main_return_restarts_program(self):
        program = build_call_program()
        walker = TraceWalker(program, seed=0)
        records = walker.walk(4)
        assert records[2].kind == InstrKind.RETURN
        assert records[2].next_pc == program.entry
        assert records[3].pc == program.entry


class TestDeterminismAndShape:
    def test_same_seed_same_trace(self, small_program):
        a = TraceWalker(small_program, seed=4).walk(2000)
        b = TraceWalker(small_program, seed=4).walk(2000)
        assert a == b

    def test_different_seed_differs(self, small_program):
        a = TraceWalker(small_program, seed=4).walk(2000)
        b = TraceWalker(small_program, seed=5).walk(2000)
        assert a != b

    def test_next_pc_chain_is_consistent(self, small_program):
        records = TraceWalker(small_program, seed=1).walk(5000)
        for previous, current in zip(records, records[1:]):
            assert previous.next_pc == current.pc

    def test_taken_iff_redirect_or_unconditional(self, small_program):
        for record in TraceWalker(small_program, seed=1).walk(5000):
            if record.kind.is_unconditional:
                assert record.taken
            if not record.kind.is_control:
                assert not record.taken
                assert record.next_pc == record.pc + INSTRUCTION_BYTES

    def test_all_pcs_inside_program(self, small_program):
        for record in TraceWalker(small_program, seed=1).walk(5000):
            assert small_program.instr_at(record.pc) is not None

    def test_record_kind_matches_static_image(self, small_program):
        for record in TraceWalker(small_program, seed=2).walk(3000):
            assert small_program.instr_at(record.pc).kind == record.kind

    def test_call_depth_bounded(self):
        shape = ProgramShape(target_instrs=4096, n_functions=32,
                             n_levels=6)
        program = generate_program(shape, seed=9)
        walker = TraceWalker(program, seed=1)
        depth = 0
        max_depth = 0
        for record in walker.records():
            if record.kind.is_call:
                depth += 1
            elif record.kind.is_return:
                depth = max(0, depth - 1)
            max_depth = max(max_depth, depth)
            if walker._stack == [] and max_depth > 0:
                break
        assert max_depth <= 6 < MAX_CALL_DEPTH

    def test_walk_returns_requested_length(self, small_program):
        assert len(TraceWalker(small_program, seed=0).walk(123)) == 123
