"""Fetch target queue behaviour."""

import pytest

from repro.errors import SimulationError
from repro.frontend import FetchTargetQueue, FTQEntry


def entry(seq, start=0x40_0000, n=4, wrong_path=False, **kw) -> FTQEntry:
    return FTQEntry(seq=seq, start=start, end=start + 4 * n,
                    predicted_next=start + 4 * n, wrong_path=wrong_path,
                    **kw)


class TestFtqBasics:
    def test_fifo_order(self):
        ftq = FetchTargetQueue(4)
        ftq.push(entry(1))
        ftq.push(entry(2, start=0x40_1000))
        assert ftq.head().seq == 1
        assert ftq.pop_head().seq == 1
        assert ftq.head().seq == 2

    def test_full_and_empty(self):
        ftq = FetchTargetQueue(2)
        assert ftq.empty
        ftq.push(entry(1))
        ftq.push(entry(2))
        assert ftq.full
        with pytest.raises(SimulationError):
            ftq.push(entry(3))

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            FetchTargetQueue(2).pop_head()

    def test_prefetch_candidates_skip_head(self):
        ftq = FetchTargetQueue(4)
        ftq.push(entry(1))
        ftq.push(entry(2))
        ftq.push(entry(3))
        assert [e.seq for e in ftq.prefetch_candidates()] == [2, 3]

    def test_prefetch_candidates_skip_scanned(self):
        ftq = FetchTargetQueue(4)
        ftq.push(entry(1))
        scanned = entry(2)
        scanned.prefetch_scanned = True
        ftq.push(scanned)
        ftq.push(entry(3))
        assert [e.seq for e in ftq.prefetch_candidates()] == [3]

    def test_clear_requires_wrong_path_only(self):
        ftq = FetchTargetQueue(4)
        ftq.push(entry(1, wrong_path=True))
        ftq.push(entry(2, wrong_path=True))
        assert ftq.clear() == 2
        assert ftq.empty

    def test_clear_with_correct_path_entry_is_a_bug(self):
        ftq = FetchTargetQueue(4)
        ftq.push(entry(1))
        with pytest.raises(SimulationError):
            ftq.clear()

    def test_depth_validated(self):
        with pytest.raises(SimulationError):
            FetchTargetQueue(0)


class TestFtqEntry:
    def test_instruction_count(self):
        e = entry(1, n=6)
        assert e.n_instrs == 6

    def test_fetch_progress(self):
        e = entry(1, n=4)
        assert not e.fully_fetched
        assert e.next_fetch_pc == e.start
        e.fetch_offset = 16
        assert e.fully_fetched

    def test_repr_tags(self):
        assert "[W]" in repr(entry(1, wrong_path=True))
        e = entry(2)
        e.mispredict = True
        assert "[M]" in repr(e)
