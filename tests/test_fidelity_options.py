"""Opt-in fidelity knobs: wrong-path window occupancy, stream probe depth."""

import dataclasses

import pytest

from repro import PrefetchConfig, PrefetcherKind, SimConfig, simulate
from repro.config import CoreConfig
from repro.cpu import Backend
from repro.sim import check_invariants


class TestWrongPathWindowBackend:
    def make_backend(self, window=16):
        core = CoreConfig(window_size=window, issue_width=4,
                          wrong_path_in_window=True)
        return Backend(core)

    def test_wrong_path_consumes_slots(self):
        backend = self.make_backend(window=16)
        backend.deliver_wrong_path(10)
        assert backend.free_slots == 6
        assert backend.occupancy == 10

    def test_wrong_path_never_retires(self):
        backend = self.make_backend()
        backend.deliver_wrong_path(4)
        assert backend.retire(1000) == 0
        assert backend.retired == 0

    def test_flush_frees_slots(self):
        backend = self.make_backend(window=16)
        backend.deliver_wrong_path(10)
        assert backend.flush_wrong_path() == 10
        assert backend.free_slots == 16

    def test_overdelivery_rejected(self):
        backend = self.make_backend(window=4)
        with pytest.raises(OverflowError):
            backend.deliver_wrong_path(5)


class TestWrongPathWindowEndToEnd:
    def config(self, wrong_path_in_window):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP), max_instructions=8000)
        return config.replace(core=dataclasses.replace(
            config.core, wrong_path_in_window=wrong_path_in_window))

    def test_completes_and_consistent(self, small_trace):
        result = simulate(small_trace, self.config(True))
        assert result.instructions == 8000
        assert check_invariants(result) == []
        assert result.get("backend.wrong_path_delivered") > 0
        assert result.get("backend.wrong_path_flushed") == \
            result.get("backend.wrong_path_delivered")

    def test_occupancy_pressure_never_speeds_up(self, small_trace):
        off = simulate(small_trace, self.config(False))
        on = simulate(small_trace, self.config(True))
        # Wrong-path occupancy can only add pressure.
        assert on.ipc <= off.ipc * 1.01

    def test_default_off_matches_legacy(self, small_trace):
        legacy = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP), max_instructions=8000)
        result = simulate(small_trace, legacy)
        assert result.get("backend.wrong_path_delivered") == 0


class TestStreamProbeDepth:
    def config(self, probe_depth):
        return SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.STREAM, stream_probe_depth=probe_depth),
            max_instructions=8000)

    def test_deeper_probe_completes_and_consistent(self, small_trace):
        result = simulate(small_trace, self.config(4))
        assert result.instructions == 8000
        assert check_invariants(result) == []

    def test_deeper_probe_not_worse(self, small_trace):
        head_only = simulate(small_trace, self.config(1))
        deep = simulate(small_trace, self.config(4))
        # Lookup-variant stream buffers tolerate small skips; they
        # should never lose to head-only compare.
        assert deep.ipc >= head_only.ipc * 0.99

    def test_non_head_hits_counted(self, small_trace):
        deep = simulate(small_trace, self.config(4))
        head_only = simulate(small_trace, self.config(1))
        assert head_only.get("stream.non_head_hits") == 0
        assert deep.get("stream.non_head_hits") >= 0
