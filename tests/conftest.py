"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cfg import ProgramShape, generate_program
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.trace import Trace, TraceRecord


# ----------------------------------------------------------------------
# Hand-built trace helpers
# ----------------------------------------------------------------------

class TraceBuilder:
    """Fluent builder of committed instruction traces for unit tests.

    Keeps a current pc; each method appends records and advances the pc
    the way the modeled instruction would.
    """

    def __init__(self, start: int = 0x40_0000):
        self.pc = start
        self.records: list[TraceRecord] = []

    def seq(self, n: int, kind: InstrKind = InstrKind.ALU) -> "TraceBuilder":
        """Append ``n`` sequential non-control instructions."""
        for _ in range(n):
            nxt = self.pc + INSTRUCTION_BYTES
            self.records.append(TraceRecord(self.pc, kind, False, nxt))
            self.pc = nxt
        return self

    def branch(self, target: int, taken: bool) -> "TraceBuilder":
        """Append a conditional branch."""
        nxt = target if taken else self.pc + INSTRUCTION_BYTES
        self.records.append(
            TraceRecord(self.pc, InstrKind.BRANCH_COND, taken, nxt))
        self.pc = nxt
        return self

    def jump(self, target: int) -> "TraceBuilder":
        self.records.append(
            TraceRecord(self.pc, InstrKind.JUMP_DIRECT, True, target))
        self.pc = target
        return self

    def call(self, target: int) -> "TraceBuilder":
        self.records.append(
            TraceRecord(self.pc, InstrKind.CALL, True, target))
        self.pc = target
        return self

    def ret(self, target: int) -> "TraceBuilder":
        self.records.append(
            TraceRecord(self.pc, InstrKind.RETURN, True, target))
        self.pc = target
        return self

    def build(self, name: str = "test") -> Trace:
        return Trace(self.records, name=name)


@pytest.fixture
def tb() -> TraceBuilder:
    return TraceBuilder()


# ----------------------------------------------------------------------
# Small generated programs/traces (session scoped: generation is costly)
# ----------------------------------------------------------------------

@pytest.fixture(scope="session")
def small_shape() -> ProgramShape:
    return ProgramShape(target_instrs=2048, n_functions=16,
                        n_levels=5, dispatcher_fanout=4)


@pytest.fixture(scope="session")
def small_program(small_shape):
    return generate_program(small_shape, seed=42, name="small")


@pytest.fixture(scope="session")
def small_trace(small_program) -> Trace:
    return Trace.from_program(small_program, 20_000, seed=7)


@pytest.fixture(scope="session")
def tiny_trace(small_program) -> Trace:
    return Trace.from_program(small_program, 3_000, seed=9)
