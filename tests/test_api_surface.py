"""Guard the public API surface against accidental drift.

``tests/data/api_surface.json`` freezes the names ``repro.api`` and
``repro.obs`` export and the parameter lists of the main entry points.
Any change — adding, removing, renaming, or reordering keyword
parameters — fails here until the fixture is updated *deliberately* in
the same commit, which makes API changes visible in review instead of
slipping out as silent breakage for downstream scripts.

Regenerate after an intentional change::

    PYTHONPATH=src python - <<'EOF'
    import inspect, json
    import repro.api as api
    import repro.obs as obs
    surface = {
        "all": sorted(api.__all__),
        "obs_all": sorted(obs.__all__),
        "signatures": {
            name: list(inspect.signature(getattr(api, name)).parameters)
            for name in ("simulate", "make_runner", "sweep",
                         "profile_run")
        },
    }
    with open("tests/data/api_surface.json", "w") as out:
        json.dump(surface, out, indent=2, sort_keys=True)
        out.write("\n")
    EOF
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path

import repro
import repro.api as api
import repro.obs as obs

FIXTURE = Path(__file__).parent / "data" / "api_surface.json"


def _frozen() -> dict:
    return json.loads(FIXTURE.read_text(encoding="utf-8"))


class TestApiSurface:
    def test_exported_names_match_fixture(self):
        assert sorted(api.__all__) == _frozen()["all"], (
            "repro.api.__all__ changed; if intentional, regenerate "
            "tests/data/api_surface.json (see this module's docstring)")

    def test_obs_exported_names_match_fixture(self):
        assert sorted(obs.__all__) == _frozen()["obs_all"], (
            "repro.obs.__all__ changed; if intentional, regenerate "
            "tests/data/api_surface.json (see this module's docstring)")

    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None
        for name in obs.__all__:
            assert getattr(obs, name) is not None

    def test_entry_point_signatures_match_fixture(self):
        for name, params in _frozen()["signatures"].items():
            actual = list(inspect.signature(getattr(api, name)).parameters)
            assert actual == params, (
                f"repro.api.{name} signature changed; if intentional, "
                f"regenerate tests/data/api_surface.json")

    def test_api_names_reexported_from_top_level(self):
        for name in api.__all__:
            assert getattr(repro, name) is getattr(api, name)
