"""Workload suite definitions and trace building."""

import pytest

from repro.errors import ConfigError
from repro.trace import TraceCache, characterize
from repro.workloads import (
    ALL_WORKLOADS,
    CLIENT_WORKLOADS,
    PROFILES,
    SERVER_WORKLOADS,
    build_program,
    build_trace,
    get_profile,
)


class TestCatalog:
    def test_ten_profiles(self):
        assert len(ALL_WORKLOADS) == 10

    def test_categories_partition(self):
        assert set(CLIENT_WORKLOADS) | set(SERVER_WORKLOADS) == \
            set(ALL_WORKLOADS)
        assert not set(CLIENT_WORKLOADS) & set(SERVER_WORKLOADS)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            get_profile("nonexistent")

    def test_profiles_have_descriptions(self):
        for profile in PROFILES.values():
            assert profile.description

    def test_invalid_category_rejected(self):
        import dataclasses
        profile = get_profile("gcc_like")
        with pytest.raises(ConfigError):
            dataclasses.replace(profile, category="embedded")


class TestPrograms:
    def test_program_deterministic(self):
        a = build_program("m88ksim_like")
        b = build_program("m88ksim_like")
        assert a.n_instrs == b.n_instrs
        assert a.entry == b.entry

    def test_server_footprints_exceed_client(self):
        client = build_program("compress_like").footprint_bytes
        server = build_program("vortex_like").footprint_bytes
        assert server > 4 * client


class TestTraces:
    def test_build_trace_uses_cache(self, tmp_path):
        cache = TraceCache(tmp_path)
        first = build_trace("compress_like", 2000, cache=cache)
        assert len(list(tmp_path.glob("*.trace.gz"))) == 1
        second = build_trace("compress_like", 2000, cache=cache)
        assert first.records == second.records

    def test_lengths_respected(self, tmp_path):
        trace = build_trace("compress_like", 1234,
                            cache=TraceCache(tmp_path))
        assert len(trace) == 1234

    def test_server_dynamic_footprint_exceeds_l1(self, tmp_path):
        trace = build_trace("vortex_like", 60_000,
                            cache=TraceCache(tmp_path))
        stats = characterize(trace)
        assert stats.distinct_blocks * 32 > 16 * 1024

    def test_client_dynamic_footprint_small(self, tmp_path):
        trace = build_trace("compress_like", 20_000,
                            cache=TraceCache(tmp_path))
        stats = characterize(trace)
        assert stats.distinct_blocks * 32 < 16 * 1024
