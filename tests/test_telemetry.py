"""The hierarchical telemetry spine: nodes, snapshots, interval
sampling, and cross-shard merging."""

from __future__ import annotations

import json

import pytest

from repro.stats import (
    SCHEMA,
    IntervalSampler,
    IntervalSeries,
    StatGroup,
    TelemetryNode,
    TelemetrySnapshot,
    merge_nodes,
    merge_snapshots,
)


def leaf(name, **counters):
    return TelemetryNode(name=name, counters=counters, histograms={},
                         derived={}, children=[])


def tree():
    """sim -> (ftq, mem -> (l1i, bus))"""
    return TelemetryNode(
        name="sim", counters={"squashes": 2}, histograms={},
        derived={}, children=[
            leaf("ftq", pushes=10, pops=8),
            TelemetryNode(
                name="mem", counters={"demand_misses": 4},
                histograms={"lat": {10: 3}}, derived={},
                children=[leaf("l1i", hits=90), leaf("bus", busy=7)]),
        ])


class TestTelemetryNode:
    def test_from_stat_group_copies(self):
        group = StatGroup("x")
        group.bump("a", 3)
        group.histogram("h").observe(2, weight=5)
        node = TelemetryNode.from_stat_group(group)
        group.bump("a")                       # must not leak into node
        group.histogram("h").observe(9)
        assert node.counters == {"a": 3}
        assert node.histograms == {"h": {2: 5}}

    def test_walk_paths_preorder(self):
        paths = [path for path, _ in tree().walk()]
        assert paths == ["sim", "sim/ftq", "sim/mem", "sim/mem/l1i",
                         "sim/mem/bus"]

    def test_child_and_find(self):
        root = tree()
        assert root.child("mem").child("bus").get("busy") == 7
        assert root.child("nope") is None
        node = root.find(lambda n: "lat" in n.histograms)
        assert node is not None and node.name == "mem"

    def test_flat_counters_uses_own_name_prefix(self):
        flat = tree().flat_counters()
        assert flat == {"sim.squashes": 2, "ftq.pushes": 10,
                        "ftq.pops": 8, "mem.demand_misses": 4,
                        "l1i.hits": 90, "bus.busy": 7}

    def test_flat_counters_duplicate_siblings_last_wins(self):
        """Matches the legacy flat merge: later nodes with the same
        group name overwrite earlier ones (the two-level FTB case)."""
        root = TelemetryNode(
            name="sim", counters={}, histograms={}, derived={},
            children=[leaf("ftb", hits=1), leaf("ftb", hits=2)])
        assert root.flat_counters()["ftb.hits"] == 2

    def test_dict_roundtrip_restores_int_histogram_keys(self):
        root = tree()
        restored = TelemetryNode.from_dict(root.to_dict())
        assert restored == root
        assert restored.child("mem").histograms["lat"] == {10: 3}


class TestMergeNodes:
    def test_counters_and_histograms_add(self):
        a = TelemetryNode(name="mem", counters={"m": 1},
                          histograms={"lat": {10: 2}}, derived={},
                          children=[])
        b = TelemetryNode(name="mem", counters={"m": 3, "n": 5},
                          histograms={"lat": {10: 1, 20: 4}}, derived={},
                          children=[])
        merged = merge_nodes([a, b])
        assert merged.counters == {"m": 4, "n": 5}
        assert merged.histograms["lat"] == {10: 3, 20: 4}

    def test_children_merged_by_name(self):
        a = TelemetryNode(name="sim", counters={}, histograms={},
                          derived={}, children=[leaf("ftq", pushes=1)])
        b = TelemetryNode(name="sim", counters={}, histograms={},
                          derived={}, children=[leaf("ftq", pushes=2),
                                                leaf("bus", busy=9)])
        merged = merge_nodes([a, b])
        assert merged.child("ftq").get("pushes") == 3
        assert merged.child("bus").get("busy") == 9

    def test_derived_dropped_on_merge(self):
        """Ratios cannot be averaged; they are recomputed downstream."""
        a = TelemetryNode(name="p", counters={"correct": 9},
                          histograms={}, derived={"accuracy": 0.9},
                          children=[])
        merged = merge_nodes([a, a])
        assert merged.derived == {}
        assert merged.counters == {"correct": 18}


class TestIntervalSampler:
    def test_per_cycle_advance(self):
        sampler = IntervalSampler(10)
        retired = misses = 0
        for cycle in range(1, 26):
            retired += 2
            if cycle % 5 == 0:
                misses += 1
            sampler.advance(cycle, 4, retired, misses)
        series = sampler.finalize(25, retired, misses)
        assert [s.end_cycle for s in series.samples] == [10, 20, 25]
        assert [s.instructions for s in series.samples] == [20, 20, 10]
        assert [s.demand_misses for s in series.samples] == [2, 2, 1]
        assert all(s.ftq_occupancy_sum == 4 * s.cycles
                   for s in series.samples)

    def test_batched_advance_matches_per_cycle(self):
        """One advance spanning several windows must reconstruct every
        interior boundary exactly as per-cycle advancing would."""
        a, b = IntervalSampler(8), IntervalSampler(8)
        for cycle in range(1, 21):
            a.advance(cycle, 3, 40, 5)
        b.advance(20, 3, 40, 5)
        assert a.finalize(20, 40, 5) == b.finalize(20, 40, 5)

    def test_origin_and_baselines(self):
        """A sampler re-created at the warm-up reset anchors windows at
        the measurement origin and subtracts the retired baseline."""
        sampler = IntervalSampler(10, origin=100, base_retired=1000)
        sampler.advance(110, 2, 1030, 0)
        series = sampler.finalize(110, 1030, 0)
        assert [s.end_cycle for s in series.samples] == [110]
        assert series.samples[0].instructions == 30

    def test_sample_derived_metrics(self):
        sampler = IntervalSampler(10)
        sampler.advance(10, 6, 20, 1)
        sample = sampler.finalize(10, 20, 1).samples[0]
        assert sample.ipc == 2.0
        assert sample.mpki == 50.0
        assert sample.mean_ftq_occupancy == 6.0

    def test_series_dict_roundtrip(self):
        sampler = IntervalSampler(4)
        sampler.advance(9, 1, 18, 2)
        series = sampler.finalize(9, 18, 2)
        assert IntervalSeries.from_dict(series.to_dict()) == series


class TestTelemetrySnapshot:
    def make(self):
        return TelemetrySnapshot(root=tree(),
                                 meta={"name": "w", "prefetcher": "fdip",
                                       "cycles": 50, "instructions": 80},
                                 intervals=None)

    def test_schema_tag_present_and_validated(self):
        payload = self.make().to_dict()
        assert payload["schema"] == SCHEMA
        payload["schema"] = "repro.telemetry/v999"
        with pytest.raises(ValueError):
            TelemetrySnapshot.from_dict(payload)

    def test_json_roundtrip(self):
        snapshot = self.make()
        assert TelemetrySnapshot.from_json(snapshot.to_json()) == snapshot
        json.loads(snapshot.to_json())        # well-formed JSON

    def test_node_navigation(self):
        snapshot = self.make()
        assert snapshot.node("mem", "l1i").get("hits") == 90
        assert snapshot.node("mem", "zzz") is None

    def test_counter_rows_cover_every_counter(self):
        snapshot = self.make()
        rows = snapshot.counter_rows()
        assert len(rows) == len(snapshot.flat_counters())
        assert ["sim/mem/l1i", "hits", 90] in rows


class TestMergeSnapshots:
    def shard(self, cycles, window=None):
        intervals = None
        if window is not None:
            sampler = IntervalSampler(window)
            sampler.advance(cycles, 1, cycles, 0)
            intervals = sampler.finalize(cycles, cycles, 0)
        return TelemetrySnapshot(
            root=tree(), meta={"name": "w", "prefetcher": "fdip",
                               "cycles": cycles,
                               "instructions": 2 * cycles},
            intervals=intervals)

    def test_meta_totals_add(self):
        merged = merge_snapshots([self.shard(10), self.shard(30)])
        assert merged.meta["cycles"] == 40
        assert merged.meta["instructions"] == 80
        assert merged.meta["prefetcher"] == "fdip"
        assert merged.root.child("mem").get("demand_misses") == 8

    def test_interval_series_concatenate_when_windows_match(self):
        merged = merge_snapshots([self.shard(10, window=10),
                                  self.shard(20, window=10)])
        assert merged.intervals is not None
        assert len(merged.intervals.samples) == 3

    def test_interval_series_dropped_on_window_mismatch(self):
        merged = merge_snapshots([self.shard(10, window=10),
                                  self.shard(20, window=5)])
        assert merged.intervals is None

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_snapshots([])
