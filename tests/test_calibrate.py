"""Workload calibration tool."""

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    ALL_WORKLOADS,
    DEFAULT_BANDS,
    CalibrationBand,
    calibrate,
    calibrate_suite,
)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))


class TestBands:
    def test_every_workload_has_a_band(self):
        assert set(DEFAULT_BANDS) == set(ALL_WORKLOADS)

    def test_bands_are_ordered(self):
        for band in DEFAULT_BANDS.values():
            lo, hi = band.dyn_footprint_kb
            assert lo < hi


class TestCalibrate:
    def test_client_profile_passes(self):
        report = calibrate("compress_like", trace_length=8000)
        assert report.ok, report.failures

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError):
            calibrate("made_up")

    def test_impossible_band_fails_with_reasons(self):
        band = CalibrationBand((1000.0, 2000.0),
                               control_fraction=(0.99, 1.0))
        report = calibrate("compress_like", trace_length=8000, band=band)
        assert not report.ok
        assert any("footprint" in f for f in report.failures)
        assert any("control fraction" in f for f in report.failures)

    @pytest.mark.slow
    def test_full_suite_calibrates(self):
        reports = calibrate_suite(trace_length=60_000)
        bad = [r for r in reports if not r.ok]
        assert not bad, [(r.name, r.failures) for r in bad]
