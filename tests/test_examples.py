"""Every example script must run end to end (subprocess smoke tests)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "compress_like", "8000")
        assert "FDIP speedup over baseline" in out

    def test_compare_prefetchers(self):
        out = run_example("compare_prefetchers.py", "5000",
                          "compress_like", "m88ksim_like")
        assert "Speedup over no-prefetch" in out
        assert "m88ksim_like" in out

    def test_cache_probe_filtering(self):
        out = run_example("cache_probe_filtering.py", "m88ksim_like",
                          "8000")
        assert "Cache probe filtering" in out
        assert "ideal" in out

    def test_custom_workload(self, tmp_path):
        out = run_example("custom_workload.py",
                          str(tmp_path / "t.trace.gz"))
        assert "round-tripped" in out
        assert "FTQ depth sweep" in out

    def test_stall_analysis(self):
        out = run_example("stall_analysis.py", "m88ksim_like", "8000")
        assert "fetch-cycle accounting" in out
        assert "prefetch timeliness" in out

    def test_pipeline_trace(self):
        out = run_example("pipeline_trace.py", "m88ksim_like", "1",
                          "40")
        assert "cycle" in out
        assert "retire rate" in out
