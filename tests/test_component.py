"""The uniform Component protocol: every machine part exposes
``name`` / ``reset()`` / ``telemetry()`` and hangs off the simulator's
tree in the documented shape."""

from __future__ import annotations

import pytest

from repro.component import Component, StatsComponent
from repro.config import PrefetchConfig, PrefetcherKind, SimConfig
from repro.sim.simulator import Simulator
from repro.stats import StatGroup, TelemetryNode


class TestProtocol:
    def test_stats_component_implements_protocol(self):
        class Widget(StatsComponent):
            def __init__(self):
                self.stats = StatGroup("widget")

        widget = Widget()
        assert isinstance(widget, Component)
        assert widget.name == "widget"
        node = widget.telemetry()
        assert isinstance(node, TelemetryNode)
        assert node.name == "widget"

    def test_reset_clears_stats_and_recurses(self):
        class Child(StatsComponent):
            def __init__(self):
                self.stats = StatGroup("child")

        class Parent(StatsComponent):
            def __init__(self):
                self.stats = StatGroup("parent")
                self._child = Child()

            def sub_components(self):
                return (self._child,)

        parent = Parent()
        parent.stats.bump("x")
        parent._child.stats.bump("y")
        parent.reset()
        assert parent.stats.get("x") == 0
        assert parent._child.stats.get("y") == 0

    def test_derived_metrics_land_in_node(self):
        class Gadget(StatsComponent):
            def __init__(self):
                self.stats = StatGroup("gadget")

            def derived_metrics(self):
                return {"ratio": 0.5}

        assert Gadget().telemetry().derived == {"ratio": 0.5}


class TestMachineCompliance:
    @pytest.fixture(scope="class")
    def sim(self, small_program):
        from repro.trace import Trace

        trace = Trace.from_program(small_program, 3_000, seed=9)
        config = SimConfig(
            prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP))
        simulator = Simulator(trace, config)
        simulator.run()
        return simulator

    def test_every_top_level_component_satisfies_protocol(self, sim):
        for component in sim.components():
            assert isinstance(component, Component), component

    def test_nested_parts_satisfy_protocol(self, sim):
        for part in (sim.predictor, sim.ras, sim.memory.l1i,
                     sim.memory.l2, sim.memory.bus, sim.memory.mshrs):
            assert isinstance(part, Component), part

    def test_tree_shape(self, sim):
        snapshot = sim.telemetry_snapshot()
        assert snapshot.root.name == "sim"
        top = [node.name for node in snapshot.root.children]
        assert top == ["ftq", "predict", "ftb", "fetch", "fdip",
                       "backend", "mem"]
        predict = snapshot.root.child("predict")
        assert {n.name for n in predict.children} >= {"ras"}
        mem = snapshot.root.child("mem")
        assert [n.name for n in mem.children] == ["l1i", "l2", "bus",
                                                  "mshr"]

    def test_no_component_stat_bypasses_the_snapshot(self, sim):
        """The result's flat view must be exactly the tree's flat view:
        nothing flows from components into SimResult another way."""
        result = sim._collect()
        assert result.counters == result.telemetry.flat_counters()
        assert result.counters == sim.telemetry_snapshot().flat_counters()

    def test_two_level_ftb_nests_both_levels(self, small_program):
        from dataclasses import replace

        from repro.trace import Trace

        trace = Trace.from_program(small_program, 3_000, seed=9)
        config = SimConfig()
        frontend = replace(
            config.frontend,
            predictor=replace(config.frontend.predictor,
                              ftb_l2_sets=64))
        config = config.replace(frontend=frontend)
        sim = Simulator(trace, config)
        sim.run()
        ftb = sim.telemetry_snapshot().root.child("ftb2")
        assert len(ftb.children) == 2    # both levels report as "ftb"
        assert all(child.name == "ftb" for child in ftb.children)

    def test_prefetcher_buffer_reports_as_child(self, sim):
        node = sim.telemetry_snapshot().root.child("fdip")
        assert "pbuf" in {child.name for child in node.children}

    def test_reset_zeroes_the_whole_tree(self, small_program):
        from repro.trace import Trace

        trace = Trace.from_program(small_program, 3_000, seed=9)
        sim = Simulator(trace, SimConfig(
            prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP)))
        sim.run()
        sim._reset_stats()
        flat = sim.telemetry_snapshot().flat_counters()
        assert all(value == 0 for value in flat.values()), flat
