"""In-run machine checkpointing: snapshot format and resume identity.

The load-bearing property is at the top: a simulation resumed from ANY
snapshot produces a bit-identical :class:`~repro.sim.SimResult` —
including interval telemetry — to the uninterrupted run, for every
prefetcher variant, under every cycle engine, and across engine switches.
Snapshots round-trip through JSON in these tests exactly as they do on
disk, so object-identity bugs (shared sidecars, live histogram
references) cannot hide behind in-process aliasing.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.config import ENGINES, PrefetchConfig, PrefetcherKind, \
    SimConfig
from repro.errors import CheckpointError, WatchdogStallError
from repro.fsutil import QUARANTINE_DIR
from repro.harness.supervise import RetryPolicy, run_supervised
from repro.sim import (
    CheckpointManager,
    Simulator,
    run_with_checkpoints,
    snapshot_meta,
)
from repro.sim.checkpoint import read_heartbeat, read_summary
from repro.workloads import build_trace
from tests import _faulty

LENGTH = 2500

_TRACE = build_trace("gcc_like", LENGTH, seed=7)


def _config(kind: str = PrefetcherKind.FDIP, **changes) -> SimConfig:
    config = SimConfig(prefetch=PrefetchConfig(kind=kind),
                       telemetry_window=64)
    return config.replace(**changes) if changes else config


def _reference(config: SimConfig, engine: str = "event"):
    """Uninterrupted run; returns (result, JSON-round-tripped snapshots)."""
    sim = Simulator(_TRACE, config, engine=engine)
    states: list[dict] = []
    sim.checkpoint_sink = lambda s: states.append(json.loads(json.dumps(s)))
    return sim.run(), states


def _resume(config: SimConfig, state: dict, engine: str = "event"):
    sim = Simulator(_TRACE, config, engine=engine)
    sim.load_state_dict(json.loads(json.dumps(state)))
    return sim.run()


# ----------------------------------------------------------------------
# Bit-identical resume (the tentpole guarantee)
# ----------------------------------------------------------------------

class TestResumeBitIdentity:

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kind", PrefetcherKind.ALL)
    def test_every_variant_resumes_identically(self, kind, engine):
        """Fuzz: arbitrary snapshot cadence, arbitrary resume points."""
        rng = random.Random(1000 * ENGINES.index(engine)
                            + PrefetcherKind.ALL.index(kind))
        interval = rng.randrange(150, 700)
        config = _config(kind, checkpoint_interval=interval)
        ref, states = _reference(config, engine)
        assert states, "trace too short to ever snapshot"
        for state in rng.sample(states, min(3, len(states))):
            assert _resume(config, state, engine) == ref

    def test_resume_crosses_engines(self):
        """A snapshot taken under one engine resumes under any other."""
        config = _config(checkpoint_interval=400)
        refs, states = {}, {}
        for engine in ENGINES:
            refs[engine], states[engine] = _reference(config, engine)
        ref = refs["naive"]
        assert all(refs[engine] == ref for engine in ENGINES)
        for source in ENGINES:
            mid = states[source][len(states[source]) // 2]
            for target in ENGINES:
                if target != source:
                    assert _resume(config, mid, target) == ref, \
                        (source, target)

    def test_resume_inside_warmup_region(self):
        """Snapshots before the measurement reset still resume exactly."""
        config = _config(checkpoint_interval=250,
                         warmup_instructions=LENGTH // 2)
        ref, states = _reference(config)
        assert _resume(config, states[0]) == ref
        assert _resume(config, states[-1]) == ref


# ----------------------------------------------------------------------
# CheckpointManager: format, rotation, corruption, identity
# ----------------------------------------------------------------------

def _state(cycle: int, **extra) -> dict:
    return {"cycle": cycle, "retired": cycle // 2, **extra}


class TestCheckpointManager:

    def test_write_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = _state(5, payload=[1, 2, {"a": None}])
        path = manager.write(state)
        assert path.exists()
        assert manager.load(path) == state
        assert manager.latest() == state

    def test_rotation_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for cycle in (10, 20, 30, 40):
            manager.write(_state(cycle))
        names = [p.name for p in manager.snapshots()]
        assert names == ["ckpt-000000000030.ckpt.json",
                         "ckpt-000000000040.ckpt.json"]
        assert manager.latest() == _state(40)
        assert manager.written == 4

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path, keep=0)

    def test_corrupt_snapshot_quarantined_and_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(_state(10))
        newest = manager.write(_state(20))
        newest.write_text("garbage, as if truncated mid-crash")
        assert manager.latest() == _state(10)
        assert manager.quarantined == 1
        assert not newest.exists()
        assert (tmp_path / QUARANTINE_DIR / newest.name).exists()

    def test_checksum_mismatch_is_corruption(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.write(_state(10))
        envelope = json.loads(path.read_text())
        envelope["payload"] = json.dumps(_state(99))
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="checksum"):
            manager.load(path)
        assert manager.latest() is None
        assert manager.quarantined == 1

    def test_version_mismatch_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        path = manager.write(_state(10))
        envelope = json.loads(path.read_text())
        envelope["version"] = 99
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="version"):
            manager.latest()

    def test_identity_mismatch_raises_not_resumes(self, tmp_path):
        theirs = CheckpointManager(tmp_path, meta={"trace": "a", "seed": 1})
        theirs.write(_state(10))
        ours = CheckpointManager(tmp_path, meta={"trace": "b", "seed": 1})
        with pytest.raises(CheckpointError, match="different run"):
            ours.latest()

    def test_snapshot_meta_ignores_engine_and_cadence(self):
        config = _config()
        base = snapshot_meta(_TRACE, config)
        varied = snapshot_meta(_TRACE, config.replace(
            fast_loop=False, checkpoint_interval=123,
            watchdog_interval=456))
        assert varied == base
        other = snapshot_meta(_TRACE, _config(PrefetcherKind.NLP))
        assert other["config_digest"] != base["config_digest"]

    def test_heartbeat_written_and_seeds_totals(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(_state(10))
        manager.write(_state(20))
        beat = read_heartbeat(tmp_path)
        assert beat["cycle"] == 20
        assert beat["retired"] == 10
        assert beat["snapshots"] == 2
        # A later attempt in the same directory (the killed worker's
        # retry) keeps counting from where the last one died.
        retry = CheckpointManager(tmp_path)
        assert retry.written == 2
        retry.write(_state(30))
        assert read_heartbeat(tmp_path)["snapshots"] == 3

    def test_clear_drops_snapshots_and_heartbeat(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.write(_state(10))
        manager.clear()
        assert manager.snapshots() == []
        assert read_heartbeat(tmp_path) is None


# ----------------------------------------------------------------------
# run_with_checkpoints: the one-call resumable run
# ----------------------------------------------------------------------

class TestRunWithCheckpoints:

    def test_clean_run_writes_summary_and_cleans_up(self, tmp_path):
        config = _config(checkpoint_interval=500)
        ref, _ = _reference(config)
        run = run_with_checkpoints(_TRACE, config, directory=tmp_path)
        assert run.result == ref
        assert run.snapshots_written > 0
        assert run.resumed_from_cycle is None
        assert list(tmp_path.glob("ckpt-*.ckpt.json")) == []
        summary = read_summary(tmp_path)
        assert summary["snapshots"] == run.snapshots_written
        assert summary["resumed_from_cycle"] is None

    def test_resumes_from_snapshot_on_disk(self, tmp_path):
        config = _config(checkpoint_interval=400)
        ref, states = _reference(config)
        seed_mgr = CheckpointManager(tmp_path,
                                     meta=snapshot_meta(_TRACE, config))
        seed_mgr.write(states[1])
        run = run_with_checkpoints(_TRACE, config, directory=tmp_path)
        assert run.result == ref
        assert run.resumed_from_cycle == states[1]["cycle"]
        assert read_summary(tmp_path)["resumed_from_cycle"] \
            == states[1]["cycle"]

    def test_refuses_other_runs_snapshots(self, tmp_path):
        config = _config(checkpoint_interval=400)
        _, states = _reference(config)
        seed_mgr = CheckpointManager(tmp_path,
                                     meta=snapshot_meta(_TRACE, config))
        seed_mgr.write(states[0])
        other = _config(PrefetcherKind.STREAM, checkpoint_interval=400)
        with pytest.raises(CheckpointError, match="different run"):
            run_with_checkpoints(_TRACE, other, directory=tmp_path)

    def test_resume_false_ignores_snapshots(self, tmp_path):
        config = _config(checkpoint_interval=400)
        ref, states = _reference(config)
        seed_mgr = CheckpointManager(tmp_path,
                                     meta=snapshot_meta(_TRACE, config))
        seed_mgr.write(states[1])
        run = run_with_checkpoints(_TRACE, config, directory=tmp_path,
                                   resume=False)
        assert run.result == ref
        assert run.resumed_from_cycle is None


# ----------------------------------------------------------------------
# No-progress watchdog
# ----------------------------------------------------------------------

class TestWatchdog:

    @pytest.mark.parametrize("engine", ENGINES)
    def test_fires_with_state_dump(self, engine):
        # Nothing retires in the first few cycles (fill latency), so a
        # 2-cycle watchdog converts that into the typed stall error any
        # genuine livelock would produce.
        config = _config(watchdog_interval=2)
        sim = Simulator(_TRACE, config, engine=engine)
        with pytest.raises(WatchdogStallError) as info:
            sim.run()
        err = info.value
        assert err.retired == 0
        assert err.cycle >= err.interval == 2
        assert err.state, "stall error must carry a machine-state dump"

    def test_quiet_on_progressing_run(self):
        config = _config(watchdog_interval=10_000)
        ref, _ = _reference(config.replace(checkpoint_interval=500))
        sim = Simulator(_TRACE, config)
        assert sim.run() == ref


# ----------------------------------------------------------------------
# Supervisor: slow-but-progressing vs stuck
# ----------------------------------------------------------------------

class TestStallDiscrimination:

    def test_progressing_worker_outlives_its_timeout(self, tmp_path):
        progress_file = tmp_path / "progress"

        def probe(key):
            try:
                return progress_file.read_text()
            except OSError:
                return None

        policy = RetryPolicy(max_retries=0, point_timeout=0.4,
                             backoff_base=0.0)
        outcome = run_supervised(
            _faulty.slow_progress,
            [("p", (str(tmp_path / "count"), str(progress_file),
                    10, 0.15, "done"))],
            processes=2, policy=policy, progress=probe)
        assert outcome.results == {"p": "done"}
        assert outcome.counters["stalls"] >= 1
        assert outcome.counters["timeouts"] == 0
        assert _faulty.read_count(str(tmp_path / "count")) == 1

    def test_stuck_worker_still_killed(self, tmp_path):
        counter = str(tmp_path / "count")
        policy = RetryPolicy(max_retries=1, point_timeout=0.5,
                             backoff_base=0.0)
        outcome = run_supervised(
            _faulty.hang_then_ok, [("p", (counter, 1, "woke", 30.0))],
            processes=2, policy=policy,
            progress=lambda key: "frozen")
        assert outcome.results == {"p": "woke"}
        assert outcome.counters["timeouts"] >= 1
        assert outcome.counters["stalls"] == 0
