"""Next-line and stream-buffer prefetchers."""


from repro.config import CacheGeometry, MemoryConfig, PrefetchConfig
from repro.frontend import FetchTargetQueue
from repro.memory import HIT_L1, HIT_SIDECAR, MISS, MemorySystem
from repro.prefetch import NlpPrefetcher, StreamBufferPrefetcher


def make_memory(mshrs=8):
    config = MemoryConfig(
        icache=CacheGeometry(size_bytes=1024, assoc=2, block_bytes=32),
        l2=CacheGeometry(size_bytes=64 * 1024, assoc=4, block_bytes=32),
        l2_hit_latency=8, memory_latency=40, bus_transfer_cycles=4,
        mshr_entries=mshrs)
    return MemorySystem(config)


def make_nlp(memory, degree=1, tagged=True):
    config = PrefetchConfig(kind="nlp", nlp_degree=degree,
                            nlp_tagged=tagged, buffer_entries=8,
                            max_prefetches_per_cycle=2)
    prefetcher = NlpPrefetcher(memory, config)
    memory.sidecar = prefetcher.sidecar
    return prefetcher


def make_stream(memory, buffers=2, depth=4, allocation_filter=False):
    config = PrefetchConfig(kind="stream", stream_buffers=buffers,
                            stream_depth=depth,
                            allocation_filter=allocation_filter,
                            max_prefetches_per_cycle=2)
    prefetcher = StreamBufferPrefetcher(memory, config)
    memory.sidecar = prefetcher.sidecar
    return prefetcher


EMPTY_FTQ = FetchTargetQueue(2)


class TestNlp:
    def test_miss_triggers_next_line(self):
        memory = make_memory()
        nlp = make_nlp(memory)
        memory.begin_cycle(1)
        nlp.on_demand(100, MISS, 1)
        memory.begin_cycle(10)
        nlp.tick(10, EMPTY_FTQ)
        assert nlp.stats.get("issued") == 1
        memory.begin_cycle(100)
        assert nlp.buffer.contains(101)

    def test_degree_prefetches_multiple(self):
        memory = make_memory()
        nlp = make_nlp(memory, degree=3)
        memory.begin_cycle(1)
        nlp.on_demand(100, MISS, 1)
        for cycle in range(10, 40, 5):
            memory.begin_cycle(cycle)
            nlp.tick(cycle, EMPTY_FTQ)
        assert nlp.stats.get("issued") == 3

    def test_sidecar_hit_triggers_tagged_chain(self):
        memory = make_memory()
        nlp = make_nlp(memory, tagged=True)
        memory.begin_cycle(1)
        nlp.buffer.insert(100)
        nlp._tags.add(100)
        result_bid_claimed = memory.sidecar.probe_and_claim(100, 1)
        assert result_bid_claimed
        nlp.on_demand(100, HIT_SIDECAR, 1)
        memory.begin_cycle(5)
        nlp.tick(5, EMPTY_FTQ)
        assert nlp.stats.get("tag_triggers") == 1
        assert nlp.stats.get("issued") == 1

    def test_untagged_mode_no_chain(self):
        memory = make_memory()
        nlp = make_nlp(memory, tagged=False)
        memory.begin_cycle(1)
        nlp.on_demand(100, HIT_SIDECAR, 1)
        nlp.tick(1, EMPTY_FTQ)
        assert nlp.stats.get("issued") == 0

    def test_l1_hit_on_tagged_block_triggers_once(self):
        memory = make_memory()
        nlp = make_nlp(memory)
        memory.begin_cycle(1)
        nlp._tags.add(50)
        nlp.on_demand(50, HIT_L1, 1)
        nlp.on_demand(50, HIT_L1, 2)   # second hit: tag gone
        memory.begin_cycle(5)
        nlp.tick(5, EMPTY_FTQ)
        memory.begin_cycle(10)
        nlp.tick(10, EMPTY_FTQ)
        assert nlp.stats.get("issued") == 1

    def test_resident_candidate_filtered(self):
        memory = make_memory()
        nlp = make_nlp(memory)
        memory.l1i.fill(101)
        memory.begin_cycle(1)
        nlp.on_demand(100, MISS, 1)
        nlp.tick(1, EMPTY_FTQ)
        assert nlp.stats.get("filtered") == 1
        assert nlp.stats.get("issued") == 0


class TestStreamBuffers:
    def test_miss_allocates_and_streams(self):
        memory = make_memory()
        stream = make_stream(memory)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        assert stream.stats.get("allocations") == 1
        for cycle in (2, 7, 12, 17):
            memory.begin_cycle(cycle)
            stream.tick(cycle, EMPTY_FTQ)
        assert stream.stats.get("issued") >= 2

    def test_head_hit_claims_and_advances(self):
        memory = make_memory()
        stream = make_stream(memory, buffers=1, depth=2)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.tick(2, EMPTY_FTQ)       # request 101
        memory.begin_cycle(100)          # fill arrives
        assert stream.probe_and_claim(101)
        assert stream.stats.get("head_hits") == 1
        buffer = stream.buffers[0]
        assert buffer.next_bid == 102

    def test_non_head_block_does_not_hit(self):
        memory = make_memory()
        stream = make_stream(memory, buffers=1, depth=4)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        for cycle in (2, 7, 12):
            memory.begin_cycle(cycle)
            stream.tick(cycle, EMPTY_FTQ)
        memory.begin_cycle(200)
        assert not stream.probe_and_claim(103)  # depth position 2, not head

    def test_in_flight_head_reports_miss_but_pops(self):
        memory = make_memory()
        stream = make_stream(memory, buffers=1, depth=2)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.tick(2, EMPTY_FTQ)        # 101 requested, in flight
        assert not stream.probe_and_claim(101)
        assert stream.stats.get("head_hits_in_flight") == 1

    def test_allocation_filter_needs_sequential_misses(self):
        memory = make_memory()
        stream = make_stream(memory, allocation_filter=True)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        assert stream.stats.get("allocations") == 0
        stream.on_demand(200, MISS, 2)     # not sequential
        assert stream.stats.get("allocations") == 0
        stream.on_demand(201, MISS, 3)     # sequential pair
        assert stream.stats.get("allocations") == 1

    def test_lru_victim_reallocated(self):
        memory = make_memory()
        stream = make_stream(memory, buffers=2)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.on_demand(200, MISS, 2)
        memory.begin_cycle(3)
        stream.on_demand(300, MISS, 3)     # evicts the stream from 100
        starts = sorted(b.next_bid for b in stream.buffers)
        assert starts == [201, 301]

    def test_resident_block_satisfied_locally(self):
        memory = make_memory()
        stream = make_stream(memory, buffers=1, depth=2)
        memory.l1i.fill(101)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.tick(2, EMPTY_FTQ)
        assert stream.stats.get("requests_satisfied_locally") == 1
        assert stream.stats.get("issued") == 0

    def test_storage_accounting(self):
        memory = make_memory()
        stream = make_stream(memory, buffers=3, depth=4)
        assert stream.total_storage_blocks == 12
