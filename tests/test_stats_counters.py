"""StatGroup and Histogram unit tests."""

import pytest

from repro.stats import Histogram, RunLengthObserver, StatGroup


class TestStatGroup:
    def test_unbumped_counter_reads_zero(self):
        group = StatGroup("g")
        assert group.get("anything") == 0

    def test_bump_default_one(self):
        group = StatGroup("g")
        group.bump("hits")
        group.bump("hits")
        assert group.get("hits") == 2

    def test_bump_amount(self):
        group = StatGroup("g")
        group.bump("bytes", 64)
        group.bump("bytes", 32)
        assert group.get("bytes") == 96

    def test_set_overwrites(self):
        group = StatGroup("g")
        group.bump("x", 5)
        group.set("x", 2)
        assert group.get("x") == 2

    def test_ratio(self):
        group = StatGroup("g")
        group.bump("hits", 3)
        group.bump("accesses", 4)
        assert group.ratio("hits", "accesses") == pytest.approx(0.75)

    def test_ratio_zero_denominator(self):
        group = StatGroup("g")
        group.bump("hits", 3)
        assert group.ratio("hits", "accesses") == 0.0

    def test_reset_clears_everything(self):
        group = StatGroup("g")
        group.bump("x")
        group.histogram("h").observe(1)
        group.reset()
        assert group.get("x") == 0
        assert group.histogram("h").total == 0

    def test_merged_into_prefixes_names(self):
        group = StatGroup("l1i")
        group.bump("hits", 7)
        flat: dict[str, int] = {}
        group.merged_into(flat)
        assert flat == {"l1i.hits": 7}

    def test_histogram_identity_per_name(self):
        group = StatGroup("g")
        assert group.histogram("h") is group.histogram("h")
        assert group.histogram("h") is not group.histogram("other")

    def test_counters_returns_copy(self):
        group = StatGroup("g")
        group.bump("x")
        snapshot = group.counters()
        snapshot["x"] = 99
        assert group.get("x") == 1


class TestHistogram:
    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_mean(self):
        hist = Histogram()
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == pytest.approx(3.0)

    def test_weighted_observe(self):
        hist = Histogram()
        hist.observe(10, weight=3)
        hist.observe(0, weight=1)
        assert hist.total == 4
        assert hist.mean == pytest.approx(7.5)

    def test_fraction_at(self):
        hist = Histogram()
        hist.observe(1, weight=3)
        hist.observe(2, weight=1)
        assert hist.fraction_at(1) == pytest.approx(0.75)
        assert hist.fraction_at(9) == 0.0

    def test_fraction_at_empty(self):
        assert Histogram().fraction_at(0) == 0.0

    def test_percentile_basics(self):
        hist = Histogram()
        for value in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
            hist.observe(value)
        assert hist.percentile(0.5) == 5
        assert hist.percentile(1.0) == 10
        assert hist.percentile(0.1) == 1

    def test_percentile_validates_q(self):
        hist = Histogram()
        hist.observe(1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(1.5)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)

    def test_items_sorted(self):
        hist = Histogram()
        hist.observe(5)
        hist.observe(1)
        hist.observe(3)
        assert [value for value, _ in hist.items()] == [1, 3, 5]

    def test_as_dict_copy(self):
        hist = Histogram()
        hist.observe(1)
        data = hist.as_dict()
        data[1] = 100
        assert hist.as_dict()[1] == 1

    def test_len_counts_distinct_values(self):
        hist = Histogram()
        hist.observe(1, weight=10)
        hist.observe(2)
        assert len(hist) == 2


class TestHistogramEdgeCases:
    def test_percentile_single_bucket(self):
        hist = Histogram()
        hist.observe(7, weight=100)
        for q in (0.001, 0.5, 0.9, 1.0):
            assert hist.percentile(q) == 7

    def test_zero_weight_observe_is_noop(self):
        hist = Histogram()
        hist.observe(3, weight=0)
        assert hist.total == 0
        assert len(hist) == 0            # no bucket created
        assert hist.as_dict() == {}
        with pytest.raises(ValueError):
            hist.percentile(0.5)         # still empty

    def test_negative_weight_rejected(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.observe(3, weight=-1)
        assert hist.total == 0

    def test_zero_weight_after_samples_changes_nothing(self):
        hist = Histogram()
        hist.observe(2, weight=5)
        before = hist.as_dict()
        hist.observe(9, weight=0)
        assert hist.as_dict() == before
        assert hist.mean == 2.0


class TestRunLengthObserver:
    def test_flush_on_finalize(self):
        """The buffered run only reaches the histogram on flush."""
        hist = Histogram()
        obs = RunLengthObserver(hist)
        obs.observe(4, weight=3)
        assert hist.total == 0           # still buffered
        obs.flush()
        assert hist.as_dict() == {4: 3}
        obs.flush()                      # idempotent: nothing buffered
        assert hist.as_dict() == {4: 3}

    def test_run_compression_matches_per_sample(self):
        direct, compressed = Histogram(), Histogram()
        obs = RunLengthObserver(compressed)
        series = [1, 1, 1, 2, 2, 0, 0, 0, 0, 3]
        for value in series:
            direct.observe(value)
            obs.observe(value)
        obs.flush()
        assert compressed.as_dict() == direct.as_dict()

    def test_zero_weight_observe_is_complete_noop(self):
        """weight=0 must neither flush the run nor switch the value."""
        hist = Histogram()
        obs = RunLengthObserver(hist)
        obs.observe(5, weight=2)
        obs.observe(7, weight=0)         # must not end the run of 5s
        obs.observe(5, weight=1)         # extends the same run
        obs.flush()
        assert hist.as_dict() == {5: 3}

    def test_value_switch_flushes_previous_run(self):
        hist = Histogram()
        obs = RunLengthObserver(hist)
        obs.observe(1, weight=2)
        obs.observe(2, weight=4)
        assert hist.as_dict() == {1: 2}  # first run flushed by switch
        obs.flush()
        assert hist.as_dict() == {1: 2, 2: 4}
