"""Pipeline tracer."""

import pytest

from repro import PrefetchConfig, PrefetcherKind, SimConfig, Simulator
from repro.analysis import PipeTracer


@pytest.fixture
def traced(small_trace):
    tracer = PipeTracer(start=1, length=150)
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP),
                       max_instructions=2000)
    simulator = Simulator(small_trace, config, tracer=tracer)
    simulator.run()
    return tracer


class TestPipeTracer:
    def test_window_respected(self, traced):
        assert traced.snapshots
        assert all(1 <= s.cycle < 151 for s in traced.snapshots)
        assert len(traced.snapshots) <= 150

    def test_cycles_monotone(self, traced):
        cycles = [s.cycle for s in traced.snapshots]
        assert cycles == sorted(cycles)

    def test_retired_monotone(self, traced):
        retired = [s.retired_total for s in traced.snapshots]
        assert retired == sorted(retired)

    def test_render_has_one_line_per_cycle(self, traced):
        text = traced.render()
        assert len(text.splitlines()) == len(traced.snapshots) + 2

    def test_render_every(self, traced):
        text = traced.render(every=10)
        assert len(text.splitlines()) <= len(traced.snapshots) / 10 + 3

    def test_retire_rate_positive(self, traced):
        assert traced.retire_rate() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PipeTracer(start=0)
        with pytest.raises(ValueError):
            PipeTracer(length=0)
        with pytest.raises(ValueError):
            PipeTracer().render(every=0)

    def test_no_tracer_unaffected(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.NONE), max_instructions=1000)
        result = Simulator(small_trace, config).run()
        assert result.instructions == 1000
