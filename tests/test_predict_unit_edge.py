"""Prediction unit edge cases: indirect targets, RAS abuse, truncation."""


from repro.bpred import HybridPredictor, ReturnAddressStack
from repro.config import FrontEndConfig, PredictorConfig
from repro.frontend import FetchTargetQueue, PredictUnit
from repro.ftb import FetchTargetBuffer
from repro.isa import InstrKind
from repro.trace import Trace, TraceRecord
from tests.conftest import TraceBuilder

BASE = 0x40_0000


def make_unit(trace, ras_depth=8, ftq_depth=8, cap=8):
    config = FrontEndConfig(
        ftq_depth=ftq_depth, max_fetch_block=cap,
        predictor=PredictorConfig(bimodal_entries=256, gshare_entries=256,
                                  history_bits=6, meta_entries=256,
                                  ras_depth=ras_depth, ftb_sets=64,
                                  ftb_ways=2))
    ras = ReturnAddressStack(ras_depth)
    unit = PredictUnit(trace, FetchTargetBuffer(64, 2),
                       HybridPredictor(256, 256, 6, 256), ras, config)
    return unit, FetchTargetQueue(ftq_depth)


def drive_to_done(unit, ftq, max_cycles=2000):
    """Tick + auto-resolve until the whole trace is predicted."""
    mispredicts = 0
    cycle = 0
    while not unit.done and cycle < max_cycles:
        cycle += 1
        entry = unit.tick(cycle, ftq)
        if entry is not None and entry.mispredict:
            mispredicts += 1
            while not ftq.empty:
                head = ftq.pop_head()
                if head is entry:
                    break
            ftq.clear()
            unit.on_resolve(entry)
        elif ftq.full:
            while not ftq.empty:
                ftq.pop_head()
    assert unit.done, "prediction unit never finished the trace"
    return mispredicts


class TestIndirectTargets:
    def indirect_trace(self, targets):
        """An indirect jump at a fixed pc visiting ``targets`` in order;
        each target block jumps back to BASE."""
        builder = TraceBuilder(BASE)
        for target in targets:
            builder.seq(2)
            # indirect jump at BASE+8
            builder.records.append(TraceRecord(
                builder.pc, InstrKind.JUMP_INDIRECT, True, target))
            builder.pc = target
            builder.seq(1)
            builder.jump(BASE)
        builder.seq(2)
        return Trace(builder.records, name="ind")

    def test_stable_indirect_learned(self):
        target = BASE + 0x400
        trace = self.indirect_trace([target] * 6)
        unit, ftq = make_unit(trace)
        mispredicts = drive_to_done(unit, ftq)
        # Initial discovery of the jump, target block, and back jump;
        # afterwards the repeated target predicts cleanly.
        assert mispredicts <= 4

    def test_alternating_indirect_keeps_missing(self):
        a, b = BASE + 0x400, BASE + 0x800
        trace = self.indirect_trace([a, b] * 5)
        unit, ftq = make_unit(trace)
        drive_to_done(unit, ftq)
        # A last-target FTB mispredicts nearly every alternation.
        assert unit.stats.get("mispredict_indirect_target") + \
            unit.stats.get("mispredict_ftb_miss") >= 8

    def test_indirect_target_updates_ftb(self):
        a, b = BASE + 0x400, BASE + 0x800
        trace = self.indirect_trace([a, b, b, b])
        unit, ftq = make_unit(trace)
        drive_to_done(unit, ftq)
        entry = unit.ftb.lookup(BASE)
        assert entry is not None
        assert entry.target == b   # most recent target stored


class TestRasStress:
    def deep_call_trace(self, depth):
        """A call chain deeper than the RAS, then unwinding returns."""
        builder = TraceBuilder(BASE)
        frames = []
        for level in range(depth):
            callee = BASE + 0x1000 * (level + 1)
            frames.append(builder.pc + 4)    # return site
            builder.call(callee)
        for return_site in reversed(frames):
            builder.ret(return_site)
            if builder.records[-1].next_pc != return_site:
                raise AssertionError
            builder.pc = return_site
            builder.seq(0)
            builder.call(builder.pc + 0)  # placeholder never used
            builder.records.pop()          # remove placeholder
        builder.seq(2)
        return Trace(builder.records, name="deep")

    def test_ras_overflow_causes_bounded_return_mispredicts(self):
        depth = 12   # RAS depth is 8 -> 4 returns lose their addresses
        trace = self.deep_call_trace(depth)
        unit, ftq = make_unit(trace, ras_depth=8)
        drive_to_done(unit, ftq)
        # The run must complete regardless of RAS corruption.
        assert unit.done

    def test_shallow_chain_fits_ras(self):
        trace = self.deep_call_trace(4)
        unit, ftq = make_unit(trace, ras_depth=8)
        mispredicts = drive_to_done(unit, ftq)
        # First-touch FTB misses only; returns predicted by the RAS.
        assert unit.stats.get("mispredict_return") == 0
        assert mispredicts <= 9


class TestTruncation:
    def test_trace_ending_mid_block_is_not_a_mispredict(self, tb):
        trace = tb.seq(5).build()   # shorter than one cap-8 block
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        assert entry is not None
        assert not entry.mispredict
        assert entry.n_records == 5
        assert unit.done

    def test_trace_ending_on_taken_branch(self, tb):
        trace = tb.seq(3).jump(BASE + 0x100).build()
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        assert entry.mispredict          # FTB miss on first encounter
        assert entry.resume_cursor == 4  # nothing left afterwards
        while not ftq.empty:
            ftq.pop_head()
        unit.on_resolve(entry)
        assert unit.done


class TestHistoryIntegrity:
    def test_history_restored_after_wrong_path(self, tb):
        trace = tb.seq(3).jump(BASE + 0x1000).seq(8).build()
        unit, ftq = make_unit(trace)
        before = unit._history
        entry = unit.tick(1, ftq)
        unit.tick(2, ftq)  # wrong path (may speculate history)
        while not ftq.empty:
            head = ftq.pop_head()
            if head is entry:
                break
        ftq.clear()
        unit.on_resolve(entry)
        # Terminal was an unconditional jump: history must equal the
        # pre-block checkpoint exactly.
        assert unit._history == before

    def test_cond_terminal_pushes_true_outcome_at_resolve(self, tb):
        trace = tb.seq(3).branch(BASE + 0x100, taken=True).seq(8)
        trace = trace.build()
        unit, ftq = make_unit(trace)
        entry = unit.tick(1, ftq)
        assert entry.mispredict          # FTB miss
        while not ftq.empty:
            head = ftq.pop_head()
            if head is entry:
                break
        ftq.clear()
        unit.on_resolve(entry)
        assert unit._history & 1 == 1    # true outcome (taken) pushed
