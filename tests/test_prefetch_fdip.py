"""FDIP prefetch engine: scanning, filtering, PIQ, squash."""


from repro.config import (
    CacheGeometry,
    FilterMode,
    MemoryConfig,
    PrefetchConfig,
)
from repro.frontend import FetchTargetQueue, FTQEntry
from repro.memory import MemorySystem
from repro.prefetch import FdipPrefetcher

BASE = 0x40_0000


def make_memory(ports=2, mshrs=8):
    config = MemoryConfig(
        icache=CacheGeometry(size_bytes=1024, assoc=2, block_bytes=32),
        l2=CacheGeometry(size_bytes=64 * 1024, assoc=4, block_bytes=32),
        l2_hit_latency=8, memory_latency=40, bus_transfer_cycles=4,
        mshr_entries=mshrs, icache_tag_ports=ports)
    return MemorySystem(config)


def make_fdip(memory, filter_mode=FilterMode.NONE, piq_depth=8,
              buffer_entries=8, per_cycle=4):
    config = PrefetchConfig(kind="fdip", filter_mode=filter_mode,
                            piq_depth=piq_depth,
                            buffer_entries=buffer_entries,
                            max_prefetches_per_cycle=per_cycle)
    prefetcher = FdipPrefetcher(memory, config)
    memory.sidecar = prefetcher.sidecar
    return prefetcher


def push_entry(ftq, seq, start, n_instrs, wrong_path=False):
    ftq.push(FTQEntry(seq=seq, start=start, end=start + 4 * n_instrs,
                      predicted_next=start + 4 * n_instrs,
                      wrong_path=wrong_path))


class TestScanning:
    def test_head_entry_not_prefetched(self):
        memory = make_memory()
        fdip = make_fdip(memory)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 8)
        memory.begin_cycle(1)
        fdip.tick(1, ftq)
        assert fdip.piq_occupancy == 0
        assert fdip.stats.get("candidates") == 0

    def test_non_head_entries_scanned_once(self):
        memory = make_memory()
        fdip = make_fdip(memory)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 8)
        push_entry(ftq, 2, BASE + 0x100, 8)   # one 32B block
        memory.begin_cycle(1)
        fdip.tick(1, ftq)
        candidates_after_first = fdip.stats.get("candidates")
        memory.begin_cycle(2)
        fdip.tick(2, ftq)
        assert fdip.stats.get("candidates") == candidates_after_first

    def test_blocks_decomposed(self):
        memory = make_memory()
        fdip = make_fdip(memory, per_cycle=1)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 16)  # spans 2 blocks
        memory.begin_cycle(1)
        fdip.tick(1, ftq)
        assert fdip.stats.get("candidates") == 2

    def test_piq_capacity_respected(self):
        memory = make_memory()
        fdip = make_fdip(memory, piq_depth=2, per_cycle=1)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 4)
        for i in range(4):
            push_entry(ftq, 2 + i, BASE + 0x1000 * (i + 1), 16)
        memory.begin_cycle(1)
        fdip.tick(1, ftq)
        fdip.validate()
        assert fdip.piq_occupancy <= 2


class TestIssue:
    def test_issues_to_memory_and_fills_buffer(self):
        memory = make_memory()
        fdip = make_fdip(memory)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        memory.begin_cycle(1)
        fdip.tick(1, ftq)
        assert fdip.stats.get("issued") == 1
        memory.begin_cycle(100)
        assert fdip.buffer.contains((BASE + 0x100) // 32)

    def test_bus_priority_blocks_issue(self):
        memory = make_memory()
        fdip = make_fdip(memory)
        ftq = FetchTargetQueue(8)
        memory.begin_cycle(1)
        memory.demand_fetch(0xFFFF, 1)    # bus busy until 5
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        fdip.tick(1, ftq)
        assert fdip.stats.get("issued") == 0
        assert fdip.piq_occupancy == 1
        memory.begin_cycle(6)
        fdip.tick(6, ftq)
        assert fdip.stats.get("issued") == 1

    def test_in_flight_duplicates_dropped(self):
        memory = make_memory()
        fdip = make_fdip(memory)
        ftq = FetchTargetQueue(8)
        bid = (BASE + 0x100) // 32
        memory.begin_cycle(1)
        memory.try_issue_prefetch(bid, 1)
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        memory.begin_cycle(10)
        fdip.tick(10, ftq)
        assert fdip.stats.get("dropped_in_flight") == 1


class TestFiltering:
    def _run_one(self, mode, resident, ports=2):
        memory = make_memory(ports=ports)
        fdip = make_fdip(memory, filter_mode=mode)
        if resident:
            memory.l1i.fill((BASE + 0x100) // 32)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        memory.begin_cycle(1)
        fdip.tick(1, ftq)
        return fdip

    def test_no_filtering_issues_redundant(self):
        fdip = self._run_one(FilterMode.NONE, resident=True)
        assert fdip.stats.get("issued") == 1

    def test_enqueue_filter_drops_resident(self):
        fdip = self._run_one(FilterMode.ENQUEUE, resident=True)
        assert fdip.stats.get("filtered_enqueue") == 1
        assert fdip.stats.get("issued") == 0

    def test_enqueue_filter_passes_missing(self):
        fdip = self._run_one(FilterMode.ENQUEUE, resident=False)
        assert fdip.stats.get("issued") == 1

    def test_ideal_filter_free_of_ports(self):
        memory = make_memory(ports=1)
        fdip = make_fdip(memory, filter_mode=FilterMode.IDEAL)
        memory.l1i.fill((BASE + 0x100) // 32)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        memory.begin_cycle(1)
        memory.demand_fetch(BASE // 32, 1)    # consumes the only port
        fdip.tick(1, ftq)
        assert fdip.stats.get("filtered_ideal") == 1
        assert fdip.stats.get("issued") == 0

    def test_enqueue_without_port_enqueues_unfiltered(self):
        memory = make_memory(ports=1)
        fdip = make_fdip(memory, filter_mode=FilterMode.ENQUEUE)
        memory.l1i.fill((BASE + 0x100) // 32)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        memory.begin_cycle(1)
        memory.demand_fetch(BASE // 32, 1)    # port gone
        fdip.tick(1, ftq)
        assert fdip.stats.get("enqueued_unfiltered") == 1

    def test_remove_filter_cleans_piq(self):
        memory = make_memory(ports=2)
        fdip = make_fdip(memory, filter_mode=FilterMode.REMOVE, per_cycle=1)
        ftq = FetchTargetQueue(8)
        bid = (BASE + 0x100) // 32
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        push_entry(ftq, 3, BASE + 0x200, 8)
        memory.begin_cycle(1)
        memory.demand_fetch(0xFFFF, 1)   # keep the bus busy: no issue
        fdip.tick(1, ftq)
        assert fdip.piq_occupancy == 2
        # Block becomes resident between enqueue and issue.
        memory.l1i.fill(bid)
        memory.begin_cycle(2)
        memory.bus._busy_until = 100     # still no issue this cycle
        fdip.tick(2, ftq)
        assert fdip.stats.get("filtered_remove") == 1
        assert fdip.piq_occupancy == 1


class TestSquash:
    def test_squash_clears_piq(self):
        memory = make_memory()
        fdip = make_fdip(memory, per_cycle=1)
        ftq = FetchTargetQueue(8)
        push_entry(ftq, 1, BASE, 4)
        push_entry(ftq, 2, BASE + 0x100, 8)
        push_entry(ftq, 3, BASE + 0x200, 8)
        memory.begin_cycle(1)
        memory.demand_fetch(0xFFFF, 1)
        fdip.tick(1, ftq)
        assert fdip.piq_occupancy > 0
        fdip.squash()
        assert fdip.piq_occupancy == 0

    def test_buffer_survives_squash(self):
        memory = make_memory()
        fdip = make_fdip(memory)
        fdip.buffer.insert(42)
        fdip.squash()
        assert fdip.buffer.contains(42)
