"""Trace diff utilities."""

from repro.isa import InstrKind
from repro.trace import Trace, TraceRecord, diff_traces, traces_equal
from tests.conftest import TraceBuilder


def simple_trace(n=10):
    return TraceBuilder().seq(n).build()


class TestTracesEqual:
    def test_identical(self):
        assert traces_equal(simple_trace(), simple_trace())

    def test_metadata_ignored(self):
        a = Trace(simple_trace().records, name="a", seed=1)
        b = Trace(simple_trace().records, name="b", seed=2)
        assert traces_equal(a, b)

    def test_different(self):
        assert not traces_equal(simple_trace(5), simple_trace(6))


class TestDiffTraces:
    def test_identical_diff(self):
        diff = diff_traces(simple_trace(), simple_trace())
        assert diff.identical
        assert not diff            # falsy when identical
        assert diff.detail == "identical"
        assert diff.first_divergence is None

    def test_first_divergence_located(self):
        a = simple_trace(10)
        records = list(a.records)
        records[4] = TraceRecord(records[4].pc, InstrKind.LOAD, False,
                                 records[4].next_pc)
        b = Trace(records)
        diff = diff_traces(a, b)
        assert diff
        assert diff.first_divergence == 4
        assert diff.divergent_records == 1
        assert "@4" in diff.detail

    def test_length_mismatch_reported(self):
        diff = diff_traces(simple_trace(10), simple_trace(8))
        assert diff
        assert diff.divergent_records == 0
        assert "lengths differ" in diff.detail

    def test_detail_truncated(self):
        a = simple_trace(20)
        records = [TraceRecord(r.pc, InstrKind.STORE, False, r.next_pc)
                   for r in a.records]
        b = Trace(records)
        diff = diff_traces(a, b, max_detail=2)
        assert diff.divergent_records == 20
        assert diff.detail.count("@") == 2

    def test_walker_determinism_via_diff(self, small_program):
        a = Trace.from_program(small_program, 2000, seed=3)
        b = Trace.from_program(small_program, 2000, seed=3)
        assert not diff_traces(a, b)
