"""Typed experiment points: ``Point``, ``ExperimentSpec``, and the
hard-fail path for removed legacy tuple points."""

from __future__ import annotations

import pytest

import repro
from repro.config import PrefetchConfig, SimConfig
from repro.errors import ConfigError
from repro.spec import ExperimentSpec, Point, normalize_points


class TestPoint:
    def test_defaults(self):
        point = Point("gcc_like", SimConfig())
        assert point.label is None
        assert point.shards is None
        assert point.name == "gcc_like"
        assert point.key == ("gcc_like", SimConfig())

    def test_label_overrides_name(self):
        point = Point("gcc_like", SimConfig(), label="baseline")
        assert point.name == "baseline"
        # The label is presentation only; the identity stays the pair.
        assert point.key == ("gcc_like", SimConfig())

    def test_hashable_and_frozen(self):
        point = Point("gcc_like", SimConfig())
        assert point in {point}
        with pytest.raises(AttributeError):
            point.workload = "other"

    @pytest.mark.parametrize("kwargs", [
        dict(workload="", config=SimConfig()),
        dict(workload=123, config=SimConfig()),
        dict(workload="gcc_like", config="not-a-config"),
        dict(workload="gcc_like", config=SimConfig(), shards=0),
        dict(workload="gcc_like", config=SimConfig(), shards=-1),
    ])
    def test_invalid_points_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            Point(**kwargs)

    def test_exported_from_top_level(self):
        from repro.api import Point as api_point

        assert repro.Point is Point
        assert api_point is Point


class TestExperimentSpec:
    def test_sequence_protocol(self):
        points = [Point("gcc_like", SimConfig()),
                  Point("perl_like", SimConfig())]
        spec = ExperimentSpec.of(points, name="demo")
        assert len(spec) == 2
        assert list(spec) == points
        assert spec[1].workload == "perl_like"
        assert spec.name == "demo"

    def test_of_rejects_tuples(self):
        with pytest.raises(ConfigError, match="Point"):
            ExperimentSpec.of([("gcc_like", SimConfig())])

    def test_rejects_non_points(self):
        with pytest.raises(ConfigError, match="ExperimentSpec.of"):
            ExperimentSpec(points=(("gcc_like", SimConfig()),))

    def test_unique_workloads_and_configs(self):
        fdip = SimConfig(prefetch=PrefetchConfig(kind="fdip"))
        none = SimConfig(prefetch=PrefetchConfig(kind="none"))
        spec = ExperimentSpec.of([
            Point("gcc_like", fdip), Point("gcc_like", none),
            Point("perl_like", fdip)])
        assert spec.workloads == ("gcc_like", "perl_like")
        assert spec.configs == (fdip, none)

    def test_exported_from_top_level(self):
        assert repro.ExperimentSpec is ExperimentSpec


class TestNormalizePoints:
    def test_points_pass_through(self):
        points = [Point("gcc_like", SimConfig())]
        assert normalize_points(points) == points

    def test_spec_unwraps(self):
        spec = ExperimentSpec.of([Point("gcc_like", SimConfig())])
        assert normalize_points(spec) == list(spec.points)

    def test_tuples_hard_fail_with_migration_hint(self):
        entry = ("gcc_like", SimConfig())
        with pytest.raises(ConfigError) as excinfo:
            normalize_points([entry])
        # The error must spell out the exact replacement call.
        assert "removed" in str(excinfo.value)
        assert "Point('gcc_like', config)" in str(excinfo.value)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError, match="sweep points"):
            normalize_points(["gcc_like"])
        with pytest.raises(ConfigError):
            normalize_points([("gcc_like", SimConfig(), "extra")])


class TestRunnerSweepAcceptsSpecs:
    LENGTH = 4_000

    def _runner(self):
        from repro.harness.runner import Runner

        return Runner(trace_length=self.LENGTH, seed=3,
                      warmup_fraction=0.1)

    def test_typed_points(self):
        runner = self._runner()
        points = [Point("compress_like", SimConfig(), label="base")]
        outcome = runner.sweep(points, processes=1)
        assert not outcome.failures
        assert outcome.results[points[0].key].instructions > 0

    def test_experiment_spec(self):
        runner = self._runner()
        spec = ExperimentSpec.of(
            [Point("compress_like", SimConfig())], name="smoke")
        outcome = runner.sweep(spec, processes=1)
        assert not outcome.failures

    def test_legacy_tuples_rejected(self):
        runner = self._runner()
        with pytest.raises(ConfigError, match="Point"):
            runner.sweep([("compress_like", SimConfig())], processes=1)

    def test_sharded_point_runs_and_counts(self):
        runner = self._runner()
        point = Point("compress_like", SimConfig(), shards=2)
        outcome = runner.sweep([point], processes=1)
        assert not outcome.failures
        result = outcome.results[point.key]
        assert result.telemetry.meta["sharding"]["shards"] == 2
        assert runner.sweep_counters["sharded_points"] == 1

    def test_api_sweep_accepts_spec(self):
        from repro.api import sweep

        spec = ExperimentSpec.of(
            [Point("compress_like", SimConfig())], name="api")
        outcome = sweep(spec, trace_length=self.LENGTH, seed=3,
                        warmup_fraction=0.1, processes=1)
        assert not outcome.failures
