"""Typed experiment points: ``Point``, ``ExperimentSpec``, and the
legacy-tuple deprecation path."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.config import PrefetchConfig, SimConfig
from repro.errors import ConfigError
from repro.spec import (
    ExperimentSpec,
    Point,
    _reset_deprecation_warnings,
    normalize_points,
)


@pytest.fixture(autouse=True)
def _rearm_tuple_warning():
    """Each test sees the once-per-process warning fresh."""
    _reset_deprecation_warnings()
    yield
    _reset_deprecation_warnings()


class TestPoint:
    def test_defaults(self):
        point = Point("gcc_like", SimConfig())
        assert point.label is None
        assert point.shards is None
        assert point.name == "gcc_like"
        assert point.key == ("gcc_like", SimConfig())

    def test_label_overrides_name(self):
        point = Point("gcc_like", SimConfig(), label="baseline")
        assert point.name == "baseline"
        # The label is presentation only; the identity stays the pair.
        assert point.key == ("gcc_like", SimConfig())

    def test_hashable_and_frozen(self):
        point = Point("gcc_like", SimConfig())
        assert point in {point}
        with pytest.raises(AttributeError):
            point.workload = "other"

    @pytest.mark.parametrize("kwargs", [
        dict(workload="", config=SimConfig()),
        dict(workload=123, config=SimConfig()),
        dict(workload="gcc_like", config="not-a-config"),
        dict(workload="gcc_like", config=SimConfig(), shards=0),
        dict(workload="gcc_like", config=SimConfig(), shards=-1),
    ])
    def test_invalid_points_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            Point(**kwargs)

    def test_exported_from_top_level(self):
        from repro.api import Point as api_point

        assert repro.Point is Point
        assert api_point is Point


class TestExperimentSpec:
    def test_sequence_protocol(self):
        points = [Point("gcc_like", SimConfig()),
                  Point("perl_like", SimConfig())]
        spec = ExperimentSpec.of(points, name="demo")
        assert len(spec) == 2
        assert list(spec) == points
        assert spec[1].workload == "perl_like"
        assert spec.name == "demo"

    def test_of_normalizes_tuples(self):
        with pytest.warns(DeprecationWarning):
            spec = ExperimentSpec.of([("gcc_like", SimConfig())])
        assert spec[0] == Point("gcc_like", SimConfig())

    def test_rejects_non_points(self):
        with pytest.raises(ConfigError, match="ExperimentSpec.of"):
            ExperimentSpec(points=(("gcc_like", SimConfig()),))

    def test_unique_workloads_and_configs(self):
        fdip = SimConfig(prefetch=PrefetchConfig(kind="fdip"))
        none = SimConfig(prefetch=PrefetchConfig(kind="none"))
        spec = ExperimentSpec.of([
            Point("gcc_like", fdip), Point("gcc_like", none),
            Point("perl_like", fdip)])
        assert spec.workloads == ("gcc_like", "perl_like")
        assert spec.configs == (fdip, none)

    def test_exported_from_top_level(self):
        assert repro.ExperimentSpec is ExperimentSpec


class TestNormalizePoints:
    def test_points_pass_through(self):
        points = [Point("gcc_like", SimConfig())]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert normalize_points(points) == points

    def test_spec_unwraps(self):
        spec = ExperimentSpec.of([Point("gcc_like", SimConfig())])
        assert normalize_points(spec) == list(spec.points)

    def test_tuples_warn_once_per_process(self):
        entry = ("gcc_like", SimConfig())
        with pytest.warns(DeprecationWarning, match="Point"):
            normalize_points([entry])
        # Second call: already warned, stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            normalize_points([entry, entry])

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError, match="sweep points"):
            normalize_points(["gcc_like"])
        with pytest.raises(ConfigError):
            normalize_points([("gcc_like", SimConfig(), "extra")])


class TestRunnerSweepAcceptsSpecs:
    LENGTH = 4_000

    def _runner(self):
        from repro.harness.runner import Runner

        return Runner(trace_length=self.LENGTH, seed=3,
                      warmup_fraction=0.1)

    def test_typed_points(self):
        runner = self._runner()
        points = [Point("compress_like", SimConfig(), label="base")]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            outcome = runner.sweep(points, processes=1)
        assert not outcome.failures
        assert outcome.results[points[0].key].instructions > 0

    def test_experiment_spec(self):
        runner = self._runner()
        spec = ExperimentSpec.of(
            [Point("compress_like", SimConfig())], name="smoke")
        outcome = runner.sweep(spec, processes=1)
        assert not outcome.failures

    def test_legacy_tuples_warn_and_run(self):
        runner = self._runner()
        with pytest.warns(DeprecationWarning, match="Point"):
            outcome = runner.sweep([("compress_like", SimConfig())],
                                   processes=1)
        assert not outcome.failures

    def test_sharded_point_runs_and_counts(self):
        runner = self._runner()
        point = Point("compress_like", SimConfig(), shards=2)
        outcome = runner.sweep([point], processes=1)
        assert not outcome.failures
        result = outcome.results[point.key]
        assert result.telemetry.meta["sharding"]["shards"] == 2
        assert runner.sweep_counters["sharded_points"] == 1

    def test_api_sweep_accepts_spec(self):
        from repro.api import sweep

        spec = ExperimentSpec.of(
            [Point("compress_like", SimConfig())], name="api")
        outcome = sweep(spec, trace_length=self.LENGTH, seed=3,
                        warmup_fraction=0.1, processes=1)
        assert not outcome.failures
