"""Idealized-mode features: perfect direction, direct-to-L1 fills."""

import dataclasses


from repro import FilterMode, PrefetchConfig, PrefetcherKind, SimConfig, \
    simulate
from repro.bpred import HybridPredictor, ReturnAddressStack
from repro.config import FrontEndConfig, PredictorConfig
from repro.frontend import FetchTargetQueue, PredictUnit
from repro.ftb import FetchTargetBuffer
from tests.conftest import TraceBuilder

BASE = 0x40_0000


def fdip_config(**frontend_overrides):
    config = SimConfig(prefetch=PrefetchConfig(
        kind=PrefetcherKind.FDIP, filter_mode=FilterMode.ENQUEUE))
    if frontend_overrides:
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, **frontend_overrides))
    return config


class TestPerfectDirection:
    def _unit(self, trace, perfect):
        config = FrontEndConfig(
            ftq_depth=8, max_fetch_block=8, perfect_direction=perfect,
            predictor=PredictorConfig(bimodal_entries=256,
                                      gshare_entries=256, history_bits=6,
                                      meta_entries=256, ras_depth=8,
                                      ftb_sets=64, ftb_ways=2))
        unit = PredictUnit(trace, FetchTargetBuffer(64, 2),
                           HybridPredictor(256, 256, 6, 256),
                           ReturnAddressStack(8), config)
        return unit, FetchTargetQueue(8)

    def _alternating_trace(self, iterations):
        """A branch alternating T/NT every visit — hard for 2-bit
        counters, trivial for the oracle."""
        builder = TraceBuilder(BASE)
        for i in range(iterations):
            taken = i % 2 == 0
            builder.seq(3).branch(BASE + 0x40, taken=taken)
            if taken:
                builder.seq(1).jump(BASE)      # at BASE+0x40
            else:
                builder.seq(1).jump(BASE)      # falls to BASE+0x10
        builder.seq(2)
        return builder.build()

    def _count_mispredicts(self, unit, ftq):
        mispredicts = 0
        cycle = 0
        while not unit.done and cycle < 1000:
            cycle += 1
            entry = unit.tick(cycle, ftq)
            if entry is not None and entry.mispredict:
                mispredicts += 1
                while not ftq.empty:
                    head = ftq.pop_head()
                    if head is entry:
                        break
                ftq.clear()
                unit.on_resolve(entry)
            elif ftq.full:
                while not ftq.empty:
                    ftq.pop_head()
        assert unit.done
        return mispredicts

    def test_oracle_removes_direction_mispredicts(self):
        trace = self._alternating_trace(12)
        real_unit, real_ftq = self._unit(trace, perfect=False)
        real = self._count_mispredicts(real_unit, real_ftq)
        oracle_unit, oracle_ftq = self._unit(trace, perfect=True)
        oracle = self._count_mispredicts(oracle_unit, oracle_ftq)
        assert oracle < real
        assert oracle_unit.stats.get("mispredict_direction") == 0

    def test_ftb_misses_still_occur_with_oracle(self):
        trace = self._alternating_trace(4)
        unit, ftq = self._unit(trace, perfect=True)
        self._count_mispredicts(unit, ftq)
        assert unit.stats.get("mispredict_ftb_miss") > 0


class TestPerfectDirectionEndToEnd:
    def test_ipc_not_worse_with_oracle(self, small_trace):
        real = simulate(small_trace, fdip_config())
        oracle = simulate(small_trace,
                                fdip_config(perfect_direction=True))
        assert oracle.ipc >= real.ipc
        assert oracle.mispredicts <= real.mispredicts


class TestDirectToL1Fills:
    def test_direct_fill_bypasses_buffer(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP, filter_mode=FilterMode.ENQUEUE,
            fill_l1_directly=True))
        result = simulate(small_trace, config)
        assert result.get("mem.prefetch_fills_to_l1") > 0
        assert result.get("pbuf.fills") == 0

    def test_buffered_fill_uses_buffer(self, small_trace):
        result = simulate(small_trace, fdip_config())
        assert result.get("pbuf.fills") > 0
        assert result.get("mem.prefetch_fills_to_l1") == 0

    def test_both_modes_complete(self, small_trace):
        for direct in (False, True):
            config = SimConfig(prefetch=PrefetchConfig(
                kind=PrefetcherKind.FDIP, fill_l1_directly=direct))
            result = simulate(small_trace, config)
            assert result.instructions == len(small_trace)
