# Convenience targets for the FDIP reproduction.

PY ?= python

.PHONY: install test test-fast lint typecheck bench bench-full perf report calibrate obs-smoke serve-smoke clean

# Files under the typed surface: the telemetry spine, the component
# protocol, and the stable API facade.
TYPECHECK_FILES = src/repro/stats src/repro/component.py src/repro/api.py

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

test-fast:
	$(PY) -m pytest tests/ -m "not slow"

lint:
	$(PY) -m ruff check src tests benchmarks examples

# Static type checking of the typed surface (configured in
# pyproject.toml [tool.mypy]).  Skips gracefully when mypy is not
# installed locally; CI always installs and runs it.
typecheck:
	@$(PY) -c "import mypy" 2>/dev/null \
	    && $(PY) -m mypy $(TYPECHECK_FILES) \
	    || echo "mypy not installed; skipping (CI runs this check)"

bench:
	REPRO_RESULT_CACHE=.result_cache \
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 REPRO_RESULT_CACHE=.result_cache \
	$(PY) -m pytest benchmarks/ --benchmark-only

perf:
	$(PY) -m repro perf

report:
	$(PY) -m repro report -o report.md

calibrate:
	$(PY) -m repro calibrate

# End-to-end observability contract: event log schema + correlation
# ids, Perfetto-loadable trace export, profile buckets summing to the
# cycle count, and bit-identical results with observability on.
obs-smoke:
	$(PY) scripts/obs_smoke.py

# End-to-end serving contract: daemon startup, duplicate requests
# coalescing to one simulation, cache hits bit-identical to direct
# runs, clean shutdown — all asserted from the structured event log.
serve-smoke:
	$(PY) scripts/serve_smoke.py

clean:
	rm -rf .trace_cache .result_cache .serve_cache benchmarks/results \
	       .pytest_cache .hypothesis
