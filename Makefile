# Convenience targets for the FDIP reproduction.

PY ?= python

.PHONY: install test test-fast lint bench bench-full perf report calibrate clean

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

test-fast:
	$(PY) -m pytest tests/ -m "not slow"

lint:
	$(PY) -m ruff check src tests benchmarks examples

bench:
	REPRO_RESULT_CACHE=.result_cache \
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 REPRO_RESULT_CACHE=.result_cache \
	$(PY) -m pytest benchmarks/ --benchmark-only

perf:
	$(PY) -m repro perf

report:
	$(PY) -m repro report -o report.md

calibrate:
	$(PY) -m repro calibrate

clean:
	rm -rf .trace_cache .result_cache benchmarks/results \
	       .pytest_cache .hypothesis
