"""Benchmark E5: Prefetch accuracy and coverage.

Useful/late/issued prefetch accounting per technique.
Regenerates the E5 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e5_accuracy_coverage(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E5",),
                               rounds=1, iterations=1)
    assert table.rows, "E5 produced no rows"
