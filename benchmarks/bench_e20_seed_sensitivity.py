"""Benchmark E20: seed-sensitivity of the headline FDIP speedup."""

from benchmarks._common import run_and_emit


def test_e20_seed_sensitivity(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E20",),
                               rounds=1, iterations=1)
    assert table.rows, "E20 produced no rows"
