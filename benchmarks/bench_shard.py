"""Benchmark: sharded-vs-monolithic wall clock on a long trace.

Measures how sharding (:mod:`repro.sim.sharding`) scales one long-trace
simulation:

- ``mono_seconds`` — the monolithic run's wall clock;
- per-shard wall clocks, timed one at a time so they are not distorted
  by CPU contention; their max is ``critical_path_seconds`` — the
  end-to-end wall clock with one free core per shard, the
  machine-independent scaling number this bench asserts on;
- ``pool_seconds`` — the actual supervised-pool run's wall clock, which
  depends on how many cores the machine really has (``cpus`` is
  recorded alongside; on a single-core box it is near the *sum* of the
  shards, not their max).

The critical-path speedup at K=4 exceeds 2x because each shard pays
only its own window plus a functional fast-forward over its prefix
(roughly an order of magnitude cheaper than cycle simulation) plus the
small timed overlap; see ``docs/performance.md`` for the model.

Standalone::

    PYTHONPATH=src python benchmarks/bench_shard.py [--quick]

writes ``BENCH_shard.json`` and prints the summary; the committed
reference numbers live under the ``"shard"`` key of
``benchmarks/perf_baseline.json``.
"""

import argparse
import json
import os
import sys
import time

from repro.api import simulate
from repro.config import SimConfig
from repro.harness.shard_runner import run_sharded
from repro.sim.sharding import plan_shards, run_one_shard
from repro.workloads import build_trace

DEFAULT_LENGTH = 200_000
QUICK_LENGTH = 60_000
DEFAULT_SHARDS = 4
DEFAULT_OUTPUT = "BENCH_shard.json"
WORKLOAD = "gcc_like"
SEED = 7


def run_shard_bench(length: int = DEFAULT_LENGTH,
                    shards: int = DEFAULT_SHARDS,
                    overlap: int | None = None) -> dict:
    """Time monolithic vs sharded execution; returns the report dict."""
    config = SimConfig(warmup_instructions=length // 5)
    trace = build_trace(WORKLOAD, length, seed=SEED)

    start = time.perf_counter()
    mono = simulate(trace, config, name=WORKLOAD)
    mono_seconds = time.perf_counter() - start

    plan = plan_shards(length, shards, overlap,
                       warmup=config.warmup_instructions)
    shard_seconds = []
    for spec in plan.shards:
        start = time.perf_counter()
        run_one_shard(trace, config, spec)
        shard_seconds.append(time.perf_counter() - start)
    critical_path = max(shard_seconds)

    start = time.perf_counter()
    sharded = run_sharded(trace, config, shards=shards, overlap=overlap,
                          processes=shards)
    pool_seconds = time.perf_counter() - start

    return {
        "version": 1,
        "workload": WORKLOAD,
        "length": length,
        "seed": SEED,
        "shards": shards,
        "overlap": sharded.telemetry.meta["sharding"]["overlap"],
        "warm": sharded.telemetry.meta["sharding"]["warm"],
        "cpus": os.cpu_count(),
        "mono_seconds": round(mono_seconds, 6),
        "shard_seconds": [round(s, 6) for s in shard_seconds],
        "critical_path_seconds": round(critical_path, 6),
        "pool_seconds": round(pool_seconds, 6),
        "critical_path_speedup": round(mono_seconds / critical_path, 3),
        "pool_speedup": round(mono_seconds / pool_seconds, 3),
        "ipc_error": round((sharded.ipc - mono.ipc) / mono.ipc, 6),
        "l1i_mpki_delta": round(sharded.l1i_mpki - mono.l1i_mpki, 6),
    }


def format_report(report: dict) -> str:
    return (
        f"shard bench: {report['workload']} x{report['shards']} "
        f"({report['length']} instrs, overlap {report['overlap']}, "
        f"{report['warm']})\n"
        f"  monolithic     {report['mono_seconds']:8.3f} s\n"
        f"  critical path  {report['critical_path_seconds']:8.3f} s "
        f"({report['critical_path_speedup']:.2f}x, slowest shard)\n"
        f"  pool ({report['cpus']} cpu)   "
        f"{report['pool_seconds']:8.3f} s "
        f"({report['pool_speedup']:.2f}x measured)\n"
        f"  accuracy       ipc {report['ipc_error']:+.3%}, "
        f"l1i mpki {report['l1i_mpki_delta']:+.4f}")


def test_shard_scaling(benchmark):
    report = benchmark.pedantic(
        run_shard_bench, kwargs={"length": QUICK_LENGTH},
        rounds=1, iterations=1)
    text = format_report(report)
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
    # The machine-independent number: with one core per shard, K=4 must
    # finish in well under half the monolithic wall clock.  (The pool
    # number is NOT asserted — it collapses to ~1x on a 1-core runner.)
    assert report["critical_path_speedup"] >= 1.8, (
        f"critical-path speedup {report['critical_path_speedup']}x "
        f"below 1.8x at K={report['shards']}")
    # Accuracy stays within the documented short-trace tolerance.
    assert abs(report["ipc_error"]) < 0.10


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short trace (CI smoke mode)")
    parser.add_argument("--length", type=int, default=None)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--shard-overlap", type=int, default=None)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    length = args.length or (QUICK_LENGTH if args.quick
                             else DEFAULT_LENGTH)
    report = run_shard_bench(length=length, shards=args.shards,
                             overlap=args.shard_overlap)
    print(format_report(report))
    with open(args.output, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")
    print(f"wrote {args.output}", file=sys.stderr)
    # The functional fast-forward is a fixed per-instruction tax, so
    # short (--quick) traces see proportionally more overhead; the 2x
    # floor is calibrated at the default length.
    floor = 1.8 if length < DEFAULT_LENGTH else 2.0
    return 0 if report["critical_path_speedup"] >= floor else 4


if __name__ == "__main__":
    raise SystemExit(main())
