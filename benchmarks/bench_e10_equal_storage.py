"""Benchmark E10: Equal-storage FDIP vs stream buffers.

Geomean speedups with matched prefetch storage 8..64 blocks.
Regenerates the E10 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e10_equal_storage(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E10",),
                               rounds=1, iterations=1)
    assert table.rows, "E10 produced no rows"
