"""Benchmark E19: secondary sensitivity sweeps (assoc/block/PIQ/MSHR/bus)."""

from benchmarks._common import run_and_emit


def test_e19_sensitivity(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E19",),
                               rounds=1, iterations=1)
    assert table.rows, "E19 produced no rows"
