"""Benchmark E15: Direction_predictor_ablation (see DESIGN.md experiment index)."""

from benchmarks._common import run_and_emit


def test_e15_predictor_ablation(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E15",),
                               rounds=1, iterations=1)
    assert table.rows, "E15 produced no rows"
