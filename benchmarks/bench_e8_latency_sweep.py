"""Benchmark E8: Memory latency sensitivity.

FDIP speedup at 0.5x..4x L2/memory latency.
Regenerates the E8 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e8_latency_sweep(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E8",),
                               rounds=1, iterations=1)
    assert table.rows, "E8 produced no rows"
