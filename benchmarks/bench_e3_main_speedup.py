"""Benchmark E3: Main result: speedup by technique.

8 workloads x 6 prefetch techniques vs the no-prefetch baseline.
Regenerates the E3 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e3_main_speedup(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E3",),
                               rounds=1, iterations=1)
    assert table.rows, "E3 produced no rows"
