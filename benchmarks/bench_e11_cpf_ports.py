"""Benchmark E11: CPF tag-port and wrong-path ablations.

Filtering effectiveness vs idle tag ports; wrong-path on/off.
Regenerates the E11 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e11_cpf_ports(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E11",),
                               rounds=1, iterations=1)
    assert table.rows, "E11 produced no rows"
