"""Benchmark E6: FTQ depth sensitivity.

FDIP speedup as the fetch target queue deepens 1..32.
Regenerates the E6 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e6_ftq_sweep(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E6",),
                               rounds=1, iterations=1)
    assert table.rows, "E6 produced no rows"
