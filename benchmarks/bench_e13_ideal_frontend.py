"""Benchmark E13: Idealized front-end limit study.

Perfect conditional-direction prediction and ideal cache probe filtering
as upper bounds on FDIP's remaining headroom.
Regenerates the E13 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e13_ideal_frontend(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E13",),
                               rounds=1, iterations=1)
    assert table.rows, "E13 produced no rows"
