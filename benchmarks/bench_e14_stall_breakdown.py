"""Benchmark E14: Fetch-cycle_breakdown (see DESIGN.md experiment index)."""

from benchmarks._common import run_and_emit


def test_e14_stall_breakdown(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E14",),
                               rounds=1, iterations=1)
    assert table.rows, "E14 produced no rows"
