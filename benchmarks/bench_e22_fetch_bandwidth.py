"""Benchmark E22: fetch bandwidth (banked access / width) sensitivity."""

from benchmarks._common import run_and_emit


def test_e22_fetch_bandwidth(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E22",),
                               rounds=1, iterations=1)
    assert table.rows, "E22 produced no rows"
