"""Benchmark E21: FDIP lookahead-window tuning."""

from benchmarks._common import run_and_emit


def test_e21_lookahead(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E21",),
                               rounds=1, iterations=1)
    assert table.rows, "E21 produced no rows"
