"""Benchmark E2: Workload characterization table.

Characterizes all 8 workloads plus a no-prefetch baseline run each.
Regenerates the E2 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e2_workloads(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E2",),
                               rounds=1, iterations=1)
    assert table.rows, "E2 produced no rows"
