"""Benchmark E17: see DESIGN.md experiment index for what it regenerates."""

from benchmarks._common import run_and_emit


def test_e17_combined(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E17",),
                               rounds=1, iterations=1)
    assert table.rows, "E17 produced no rows"
