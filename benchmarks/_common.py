"""Shared infrastructure for the experiment benchmarks.

Every ``bench_e*.py`` regenerates one table/figure of the evaluation (see
DESIGN.md experiment index).  All benches share one :class:`Runner` so
simulation points required by several experiments are simulated once.

Each bench prints its table through :func:`emit`, which writes to stdout
and to ``benchmarks/results/<id>.txt``.  Note that pytest's default
fd-level capture swallows stdout from passing tests — run with ``-s``
(``pytest benchmarks/ --benchmark-only -s``) to see the tables inline;
they are always saved under ``benchmarks/results/`` either way.

Environment knobs:

- ``REPRO_TRACE_LEN=<n>`` — instructions per workload trace.
- ``REPRO_FULL=1`` — long traces (400k) instead of the quick default (60k).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.api import make_runner
from repro.harness import ExperimentTable, Runner, run_experiment

_RESULTS_DIR = Path(__file__).parent / "results"
_runner: Runner | None = None


def get_runner() -> Runner:
    """The process-wide memoizing experiment runner."""
    global _runner
    if _runner is None:
        _runner = make_runner()
    return _runner


def emit(table: ExperimentTable) -> None:
    """Print the table past pytest's capture and save it to disk."""
    text = table.formatted()
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
    _RESULTS_DIR.mkdir(exist_ok=True)
    out = _RESULTS_DIR / f"{table.experiment_id}.txt"
    out.write_text(text + "\n", encoding="utf-8")


def run_and_emit(experiment_id: str) -> ExperimentTable:
    """Run one experiment on the shared runner and publish its table."""
    table = run_experiment(experiment_id, get_runner())
    emit(table)
    return table
