"""Benchmark E1: Machine configuration table.

Static: formats the simulated machine parameters.
Regenerates the E1 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e1_config_table(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E1",),
                               rounds=1, iterations=1)
    assert table.rows, "E1 produced no rows"
