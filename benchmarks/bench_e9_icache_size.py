"""Benchmark E9: L1-I size sensitivity (16KB vs 32KB).

FDIP gain shrinks when the cache absorbs the working set.
Regenerates the E9 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e9_icache_size(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E9",),
                               rounds=1, iterations=1)
    assert table.rows, "E9 produced no rows"
