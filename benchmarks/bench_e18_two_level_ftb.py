"""Benchmark E18: two-level FTB vs monolithic (scalable front end)."""

from benchmarks._common import run_and_emit


def test_e18_two_level_ftb(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E18",),
                               rounds=1, iterations=1)
    assert table.rows, "E18 produced no rows"
