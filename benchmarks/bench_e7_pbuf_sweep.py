"""Benchmark E7: Prefetch buffer size sensitivity.

FDIP speedup with 8..64 prefetch buffer entries.
Regenerates the E7 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e7_pbuf_sweep(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E7",),
                               rounds=1, iterations=1)
    assert table.rows, "E7 produced no rows"
