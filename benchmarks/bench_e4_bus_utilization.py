"""Benchmark E4: Bus utilization by technique.

Same matrix as E3; reports L2 bus occupancy instead of IPC.
Regenerates the E4 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e4_bus_utilization(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E4",),
                               rounds=1, iterations=1)
    assert table.rows, "E4 produced no rows"
