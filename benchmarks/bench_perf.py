"""Benchmark: simulator throughput (fast path vs naive cycle loop).

Unlike the ``bench_e*`` experiments, which regenerate paper tables, this
bench measures the simulator *itself*: simulated instructions per
wall-clock second on the :data:`repro.perf.PERF_MATRIX` configurations,
with the idle-cycle skip engine off and on.  The same measurement is
available outside pytest as ``python -m repro perf`` (or ``make perf``),
which also writes ``BENCH_perf.json`` and checks the committed baseline.
"""

import sys

from repro import perf


def test_perf_matrix(benchmark):
    report = benchmark.pedantic(
        perf.run_perf, kwargs={"length": perf.QUICK_LENGTH, "reps": 1},
        rounds=1, iterations=1)
    text = perf.format_report(report)
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
    for name, data in report["points"].items():
        assert data["identical"], f"{name}: fast and naive results differ"
    assert report["points"]["stall_heavy"]["speedup"] > 1.0
