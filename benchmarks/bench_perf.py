"""Benchmark: simulator throughput across the three cycle engines.

Unlike the ``bench_e*`` experiments, which regenerate paper tables, this
bench measures the simulator *itself*: simulated instructions per
wall-clock second on the :data:`repro.perf.PERF_MATRIX` configurations
under the naive, fast, and event cycle engines.  The same measurement
is available outside pytest as ``python -m repro perf`` (or
``make perf``), which also writes ``BENCH_perf.json`` and checks the
committed baseline.

This file doubles as the CI ``perf-gate``: when the committed baseline
(``benchmarks/perf_baseline.json``) exists, every point's per-engine
speedup-over-naive must stay within
:data:`repro.perf.DEFAULT_MAX_REGRESSION` (15%) of it.  Speedups are
wall-clock ratios, so the gate holds across machines of different
absolute speed.
"""

import json
import sys
from pathlib import Path

from repro import perf

_BASELINE = Path(__file__).parent / "perf_baseline.json"


def test_perf_matrix(benchmark):
    report = benchmark.pedantic(
        perf.run_perf,
        kwargs={"length": perf.QUICK_LENGTH, "reps": 3, "warmup": 1},
        rounds=1, iterations=1)
    text = perf.format_report(report)
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
    for name, data in report["points"].items():
        assert data["identical"], f"{name}: engine results differ"
    # The default engine must actually win where winning is possible.
    assert report["points"]["stall_heavy"]["speedup"] > 1.0
    if _BASELINE.exists():
        baseline = json.loads(_BASELINE.read_text(encoding="utf-8"))
        failures = perf.compare_to_baseline(report, baseline)
        assert not failures, "; ".join(failures)
