"""Benchmark E16: see DESIGN.md experiment index for what it regenerates."""

from benchmarks._common import run_and_emit


def test_e16_ftb_sweep(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E16",),
                               rounds=1, iterations=1)
    assert table.rows, "E16 produced no rows"
