"""Benchmark E12: Front-end characterization.

FTQ occupancy and fetch-block size distributions under FDIP.
Regenerates the E12 table (see DESIGN.md experiment index and
EXPERIMENTS.md for paper-vs-measured notes).
"""

from benchmarks._common import run_and_emit


def test_e12_ftq_occupancy(benchmark):
    table = benchmark.pedantic(run_and_emit, args=("E12",),
                               rounds=1, iterations=1)
    assert table.rows, "E12 produced no rows"
