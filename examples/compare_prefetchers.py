#!/usr/bin/env python3
"""Compare every prefetching technique across the workload suite.

Regenerates a compact version of the paper's main comparison (experiment
E3): IPC speedup over the no-prefetch baseline for tagged next-line
prefetching, stream buffers, and FDIP with each cache-probe-filtering
variant.

Usage::

    python examples/compare_prefetchers.py [trace_length] [workload ...]
"""

import sys

from repro import ExperimentSpec, Point
from repro.harness import Runner, TECHNIQUE_ORDER, technique_config
from repro.stats import format_table
from repro.workloads import ALL_WORKLOADS


def main() -> int:
    length = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    workloads = sys.argv[2:] or list(ALL_WORKLOADS)

    runner = Runner(trace_length=length)
    baseline = technique_config("none")
    techniques = [t for t in TECHNIQUE_ORDER if t != "none"]

    # Prewarm the whole grid fault-tolerantly with the typed spec API;
    # the runner.run calls below then replay memoized results.
    spec = ExperimentSpec.of(
        [Point(workload, technique_config(technique),
               label=f"{workload}/{technique}")
         for workload in workloads
         for technique in TECHNIQUE_ORDER],
        name="compare-prefetchers")
    runner.sweep(spec)

    rows = []
    for workload in workloads:
        base = runner.run(workload, baseline)
        row: list[object] = [workload, base.ipc]
        for technique in techniques:
            result = runner.run(workload, technique_config(technique))
            row.append(result.speedup_over(base))
        rows.append(row)
        print(f"  {workload}: done", file=sys.stderr)

    print(format_table(["workload", "base IPC", *techniques], rows,
                       title=f"Speedup over no-prefetch "
                             f"({length} instructions/workload)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
