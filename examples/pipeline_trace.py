#!/usr/bin/env python3
"""Watch the decoupled front end work, cycle by cycle.

Attaches a pipeline tracer to a short FDIP simulation and prints the
timeline around the measured window: FTQ occupancy rising as the
prediction unit runs ahead, fills in flight, the fetch engine stalling
on misses, and wrong-path episodes after mispredictions.

Usage::

    python examples/pipeline_trace.py [workload] [start_cycle] [length]
"""

import sys

from repro import PrefetchConfig, SimConfig, simulate
from repro.analysis import PipeTracer
from repro.workloads import ALL_WORKLOADS, build_trace


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vortex_like"
    start = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    length = int(sys.argv[3]) if len(sys.argv) > 3 else 60
    if workload not in ALL_WORKLOADS:
        print(f"unknown workload {workload!r}; choose from: "
              f"{', '.join(ALL_WORKLOADS)}")
        return 1

    trace = build_trace(workload, 20_000)
    tracer = PipeTracer(start=start, length=length)
    config = SimConfig(prefetch=PrefetchConfig(kind="fdip",
                                               filter_mode="enqueue"))
    result = simulate(trace, config, tracer=tracer)

    print(f"{workload}: IPC {result.ipc:.3f}, "
          f"{result.mispredicts} mispredicts, "
          f"{result.prefetches_issued} prefetches\n")
    print(f"cycles {start}..{start + length - 1}:")
    print(tracer.render())
    print(f"\nretire rate in window: {tracer.retire_rate():.2f} instr/cycle")
    print("flags: MISS = fetch blocked on an L1-I fill; "
          "WRONG-PATH = running ahead of an unresolved mispredict")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
