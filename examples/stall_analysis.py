#!/usr/bin/env python3
"""Where do the cycles go?  Fetch-stall accounting with ASCII charts.

Runs a server workload under each prefetching technique, prints the
fetch-cycle breakdown (experiment E14's data) as bar charts, and shows
the prefetch lead-time distribution for FDIP — how far ahead of demand
the prefetches land.

Usage::

    python examples/stall_analysis.py [workload] [trace_length]
"""

import sys

from repro.analysis import (
    bar_chart,
    histogram_chart,
    stall_breakdown,
    timeliness_summary,
)
from repro.harness import Runner, technique_config


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "gcc_like"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000

    runner = Runner(trace_length=length)
    techniques = ("none", "nlp", "stream", "fdip_enqueue")

    print(f"== fetch-cycle accounting on {workload} "
          f"({length} instructions) ==\n")
    for technique in techniques:
        result = runner.run(workload, technique_config(technique))
        breakdown = stall_breakdown(result)
        print(bar_chart(
            ["active", "icache miss", "window full", "ftq empty"],
            [breakdown.active, breakdown.icache_miss,
             breakdown.window_full, breakdown.ftq_empty],
            width=36,
            title=f"{technique}  (IPC {result.ipc:.3f})"))
        print()

    fdip = runner.run(workload, technique_config("fdip_enqueue"))
    summary = timeliness_summary(fdip)
    print(f"== FDIP prefetch timeliness ==")
    print(f"useful {summary.useful}, late {summary.late} "
          f"({summary.late_fraction:.1%} of covered misses arrived "
          f"after being demanded)")
    print(f"lead cycles: mean {summary.mean_lead_cycles:.1f}, "
          f"p50 {summary.p50_lead_cycles}, p90 {summary.p90_lead_cycles}")
    print()
    print(histogram_chart(fdip.prefetch_lead_hist, width=36,
                          title="lead-time distribution (cycles -> count)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
