#!/usr/bin/env python3
"""Quickstart: simulate one workload with and without FDIP.

Builds a synthetic server-like instruction trace, runs the no-prefetch
baseline and fetch-directed prefetching with enqueue cache-probe
filtering, and prints the headline metrics.

Usage::

    python examples/quickstart.py [workload] [trace_length]
"""

import sys

from repro import PrefetchConfig, SimConfig, simulate
from repro.workloads import ALL_WORKLOADS, build_trace


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "perl_like"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 100_000
    if workload not in ALL_WORKLOADS:
        print(f"unknown workload {workload!r}; choose from: "
              f"{', '.join(ALL_WORKLOADS)}")
        return 1

    print(f"building {length} instruction trace for {workload} ...")
    trace = build_trace(workload, length)

    baseline_config = SimConfig(prefetch=PrefetchConfig(kind="none"))
    fdip_config = SimConfig(prefetch=PrefetchConfig(kind="fdip",
                                                    filter_mode="enqueue"))

    print("simulating no-prefetch baseline ...")
    baseline = simulate(trace, baseline_config)
    print("simulating FDIP (enqueue cache probe filtering) ...")
    fdip = simulate(trace, fdip_config)

    print()
    print(f"{'metric':24s} {'baseline':>10s} {'fdip':>10s}")
    print(f"{'IPC':24s} {baseline.ipc:10.3f} {fdip.ipc:10.3f}")
    print(f"{'L1-I MPKI':24s} {baseline.l1i_mpki:10.2f} "
          f"{fdip.l1i_mpki:10.2f}")
    print(f"{'bus utilization':24s} {baseline.bus_utilization:10.3f} "
          f"{fdip.bus_utilization:10.3f}")
    print(f"{'prefetches issued':24s} {0:10d} "
          f"{fdip.prefetches_issued:10d}")
    print(f"{'prefetch accuracy':24s} {'-':>10s} "
          f"{fdip.prefetch_accuracy:10.2%}")
    print(f"{'prefetch coverage':24s} {'-':>10s} "
          f"{fdip.prefetch_coverage:10.2%}")
    print()
    print(f"FDIP speedup over baseline: {fdip.speedup_over(baseline):.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
