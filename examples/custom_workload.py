#!/usr/bin/env python3
"""Build, persist, and simulate a custom synthetic workload.

Demonstrates the workload substrate end to end: define a program shape,
generate the control-flow graph, characterize the resulting trace, write
it to a trace file, read it back, and run the FTQ-depth sensitivity sweep
on it (a miniature experiment E6).

Usage::

    python examples/custom_workload.py [output.trace.gz]
"""

import dataclasses
import sys
import tempfile
from pathlib import Path

from repro import PrefetchConfig, SimConfig, simulate
from repro.cfg import ProgramShape, generate_program
from repro.stats import format_table
from repro.trace import Trace, characterize, read_trace, write_trace


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.gettempdir()) / "custom.trace.gz"

    # A mid-sized "transaction processing" shape: a 48-way dispatch loop
    # over handlers, moderately predictable branches, indirect-call heavy.
    shape = ProgramShape(
        target_instrs=36_864,
        n_functions=144,
        dispatcher_fanout=48,
        dispatcher_zipf_s=0.2,
        p_call_indirect=0.30,
        p_loop=0.18,
        call_zipf_s=0.4,
    )
    program = generate_program(shape, seed=7, name="custom_txn")
    print(f"generated {program!r}")

    trace = Trace.from_program(program, 80_000, seed=3)
    stats = characterize(trace)
    print(f"trace: {stats.n_records} records, "
          f"footprint {stats.footprint_kb:.1f}KB "
          f"({stats.distinct_blocks} cache blocks), "
          f"control fraction {stats.control_fraction:.2f}")

    write_trace(trace, out_path)
    reloaded = read_trace(out_path)
    assert len(reloaded) == len(trace)
    print(f"trace round-tripped through {out_path}")

    rows = []
    for depth in (1, 4, 16, 32):
        def config_for(kind: str) -> SimConfig:
            config = SimConfig(prefetch=PrefetchConfig(
                kind=kind, filter_mode="enqueue"))
            return config.replace(frontend=dataclasses.replace(
                config.frontend, ftq_depth=depth))

        base = simulate(reloaded, config_for("none"))
        fdip = simulate(reloaded, config_for("fdip"))
        rows.append([depth, base.ipc, fdip.ipc, fdip.speedup_over(base),
                     fdip.ftq_mean_occupancy])

    print()
    print(format_table(
        ["ftq depth", "base IPC", "fdip IPC", "speedup", "mean FTQ occ"],
        rows, title="FTQ depth sweep on the custom workload"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
