#!/usr/bin/env python3
"""Cache probe filtering study.

Shows *why* filtering matters: unfiltered FDIP issues a prefetch for every
predicted cache block, most of which are already in the L1-I.  Each
filtering variant (enqueue, remove, ideal) trades idle tag-port probes for
bus bandwidth.  The table reports, per variant, the speedup, the bus
utilization, how many candidates were filtered, and where.

Usage::

    python examples/cache_probe_filtering.py [workload] [trace_length]
"""

import sys

from repro.harness import Runner, technique_config
from repro.stats import format_table


def main() -> int:
    workload = sys.argv[1] if len(sys.argv) > 1 else "vortex_like"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 80_000

    runner = Runner(trace_length=length)
    base = runner.run(workload, technique_config("none"))

    rows = []
    for technique in ("fdip_nofilter", "fdip_enqueue", "fdip_remove",
                      "fdip_ideal"):
        result = runner.run(workload, technique_config(technique))
        rows.append([
            technique.removeprefix("fdip_"),
            result.speedup_over(base),
            result.bus_utilization,
            result.prefetches_issued,
            result.get("fdip.filtered_enqueue"),
            result.get("fdip.filtered_remove"),
            result.get("fdip.filtered_ideal"),
            result.prefetch_accuracy,
        ])

    print(format_table(
        ["filter", "speedup", "bus util", "issued", "filt@enq",
         "filt@piq", "filt@oracle", "accuracy"],
        rows,
        title=f"Cache probe filtering on {workload} "
              f"({length} instructions; baseline IPC {base.ipc:.3f}, "
              f"bus {base.bus_utilization:.3f})"))
    print()
    print("Reading the table: filtering drops redundant prefetches before")
    print("they reach the bus — utilization falls while speedup holds or")
    print("improves, which is the paper's core argument for CPF.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
