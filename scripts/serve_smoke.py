#!/usr/bin/env python
"""Simulation-service smoke check (CI: the ``serve-smoke`` job).

Drives the real daemon end to end over HTTP and asserts the serving
contract:

1. ``repro serve --port 0`` starts, prints its bound address, and
   serves ``/v1/health``;
2. N concurrent identical submissions run **exactly one** simulation —
   asserted from the structured event log (one ``run_start`` /
   ``serve_running``; every duplicate either coalesced onto it or hit
   the cache);
3. a repeat of the same request after completion is a pure cache hit
   (zero additional simulations) and the served result is
   **bit-identical** to a direct in-process ``api.simulate()`` run;
4. ``POST /v1/shutdown`` drains the service and the daemon exits 0,
   emitting ``serve_stop``.

Exits non-zero on the first violation.  Pure standard library, a few
seconds of wall clock — cheap enough for every CI run.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

LENGTH = 20_000
DUPLICATES = 4


def _fail(message: str) -> None:
    raise SystemExit(f"serve-smoke: {message}")


def main() -> int:
    from repro.config import SimConfig
    from repro.obs import read_events
    from repro.serve import Client
    from repro.spec import RunRequest

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as work:
        events_path = os.path.join(work, "events.jsonl")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(ROOT, "src"),
                   REPRO_LOG_FILE=events_path)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--cache-dir", os.path.join(work, "cache")],
            stdout=subprocess.PIPE, text=True, env=env, cwd=ROOT)
        try:
            line = daemon.stdout.readline().strip()
            match = re.match(r"serving on http://([\d.]+):(\d+)$", line)
            if not match:
                _fail(f"unexpected startup line {line!r}")
            client = Client(match.group(1), int(match.group(2)))
            if client.health().get("ok") is not True:
                _fail("health check failed")

            request = RunRequest("compress_like", SimConfig(),
                                 trace_length=LENGTH, seed=1,
                                 label="compress_like")

            # -- duplicate concurrent submissions --------------------
            ids: list[str | None] = [None] * DUPLICATES

            def submit(slot: int) -> None:
                ids[slot] = client.submit(request)

            threads = [threading.Thread(target=submit, args=(slot,))
                       for slot in range(DUPLICATES)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if None in ids or len(set(ids)) != DUPLICATES:
                _fail(f"expected {DUPLICATES} distinct job ids, "
                      f"got {ids}")
            responses = [client.fetch(job, wait=300) for job in ids]
            print(f"serve-smoke: {DUPLICATES} duplicate submissions -> "
                  f"sources {sorted(r.source for r in responses)}")

            # -- repeat after completion: a pure cache hit -----------
            repeat = client.run(request, wait=300)
            if repeat.source != "cache":
                _fail(f"repeat request came back {repeat.source!r}, "
                      f"expected 'cache'")

            # -- served results are bit-identical to a direct run ----
            from repro.api import simulate
            from repro.sim.serialize import result_to_json
            from repro.workloads import build_trace

            direct = simulate(build_trace("compress_like", LENGTH,
                                          seed=1),
                              SimConfig(), name="compress_like")
            golden = result_to_json(direct)
            for response in [*responses, repeat]:
                if result_to_json(response.result) != golden:
                    _fail("served result is not bit-identical to a "
                          "direct api.simulate() run")
            print("serve-smoke: served results bit-identical to a "
                  "direct run")

            # -- clean shutdown --------------------------------------
            client.shutdown()
            if daemon.wait(timeout=30) != 0:
                _fail(f"daemon exited {daemon.returncode}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)

        # -- the event log tells the whole story ---------------------
        events = read_events(events_path)
        counts: dict[str, int] = {}
        for event in events:
            counts[event["kind"]] = counts.get(event["kind"], 0) + 1
        if counts.get("run_start", 0) != 1:
            _fail(f"expected exactly 1 simulation in the daemon, "
                  f"event log shows {counts.get('run_start', 0)} "
                  f"run_start events")
        if counts.get("serve_running", 0) != 1:
            _fail(f"expected exactly 1 serve_running event, "
                  f"got {counts.get('serve_running', 0)}")
        duplicates_accounted = counts.get("serve_coalesced", 0) \
            + counts.get("serve_cache_hit", 0)
        # DUPLICATES-1 duplicates plus the post-completion repeat all
        # avoided a simulation, whichever path each one took.
        if duplicates_accounted != DUPLICATES:
            _fail(f"expected {DUPLICATES} coalesced/cache-hit "
                  f"submissions, got {duplicates_accounted} "
                  f"(counts {counts})")
        if counts.get("serve_cache_hit", 0) < 1:
            _fail("the post-completion repeat never hit the cache")
        for kind in ("serve_start", "serve_enqueued", "serve_scheduled",
                     "serve_done", "serve_stop"):
            if counts.get(kind, 0) < 1:
                _fail(f"event log is missing {kind} (counts {counts})")
        print(f"serve-smoke: event log ok "
              f"({counts.get('serve_enqueued')} submissions, "
              f"1 simulation, "
              f"{counts.get('serve_coalesced', 0)} coalesced, "
              f"{counts.get('serve_cache_hit', 0)} cache hits)")
    print("serve-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
