#!/usr/bin/env python
"""Observability smoke check (CI: the ``obs-smoke`` job).

Drives the real CLI end to end and asserts the observability contract:

1. a sweep with ``--log-file``/``--trace-export`` writes an event log
   in which **every** line validates against ``repro.events/v1`` and
   carries one coherent run id, and a Chrome trace that passes the
   structural checks Perfetto's loader performs;
2. ``repro profile --json`` emits a ``repro.profile/v1`` document
   whose buckets sum exactly to the measured cycle count;
3. profiling and event logging never perturb results: a logged,
   profiled run returns a ``SimResult`` bit-identical to a bare run.

Exits non-zero on the first violation.  Pure standard library, a few
seconds of wall clock — cheap enough for every CI run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

LENGTH = "6000"


def _run_cli(*args: str, env: dict | None = None) -> str:
    command = [sys.executable, "-m", "repro", *args]
    merged = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    if env:
        merged.update(env)
    done = subprocess.run(command, capture_output=True, text=True,
                          env=merged, cwd=ROOT, timeout=600)
    if done.returncode != 0:
        raise SystemExit(
            f"obs-smoke: {' '.join(command)} exited "
            f"{done.returncode}\n{done.stderr}")
    return done.stdout


def check_sweep_log_and_trace(workdir: str) -> None:
    from repro.obs import read_events, validate_chrome_trace

    events_path = os.path.join(workdir, "events.jsonl")
    trace_path = os.path.join(workdir, "sweep.trace.json")
    _run_cli("sweep", "-w", "compress_like", "-t", "none",
             "fdip_enqueue", "--length", LENGTH, "--processes", "2",
             "--log-file", events_path, "--trace-export", trace_path)

    events = read_events(events_path)   # validates every line
    if not events:
        raise SystemExit("obs-smoke: sweep wrote no events")
    kinds = {event["kind"] for event in events}
    needed = {"sweep_start", "task_spawn", "run_start", "run_end",
              "task_done", "sweep_end"}
    if not needed <= kinds:
        raise SystemExit(
            f"obs-smoke: sweep log is missing kinds "
            f"{sorted(needed - kinds)}")
    runs = {event["run"] for event in events}
    if len(runs) != 1 or None in runs:
        raise SystemExit(
            f"obs-smoke: expected one run id across supervisor and "
            f"workers, saw {runs}")
    settled = [e for e in events if e["kind"] == "task_done"]
    if any(e["point"] is None or e["attempt"] is None for e in settled):
        raise SystemExit("obs-smoke: task_done events lost their "
                         "point/attempt correlation ids")

    with open(trace_path, encoding="utf-8") as handle:
        document = json.load(handle)
    validate_chrome_trace(document)
    if not document["traceEvents"]:
        raise SystemExit("obs-smoke: exported Chrome trace is empty")
    print(f"obs-smoke: sweep ok ({len(events)} events, "
          f"{len(document['traceEvents'])} trace events)")


def check_profile_sums() -> None:
    out = _run_cli("profile", "-w", "compress_like", "--length", LENGTH,
                   "--json")
    profile = json.loads(out)
    if profile.get("schema") != "repro.profile/v1":
        raise SystemExit(
            f"obs-smoke: bad profile schema {profile.get('schema')!r}")
    total = sum(profile["buckets"].values())
    if total != profile["cycles"]:
        raise SystemExit(
            f"obs-smoke: profile buckets sum to {total}, "
            f"run took {profile['cycles']} cycles")
    print(f"obs-smoke: profile ok ({profile['cycles']} cycles "
          f"fully attributed)")


def check_results_unperturbed(workdir: str) -> None:
    from repro.api import profile_run, simulate
    from repro.config import SimConfig
    from repro.obs import configure_logging, reset_logging
    from repro.workloads import build_trace

    trace = build_trace("compress_like", int(LENGTH), seed=1)
    bare = simulate(trace, SimConfig())
    configure_logging(file=os.path.join(workdir, "perturb.jsonl"))
    try:
        response = profile_run(trace, SimConfig())
        observed, profile = response.result, response.profile
    finally:
        reset_logging()
    if observed != bare:
        raise SystemExit("obs-smoke: observability perturbed the "
                         "simulation result")
    if sum(profile["buckets"].values()) != bare.cycles:
        raise SystemExit("obs-smoke: profile disagrees with the bare "
                         "run's cycle count")
    print("obs-smoke: results bit-identical with observability on")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-obs-smoke-") as work:
        check_sweep_log_and_trace(work)
        check_profile_sums()
        check_results_unperturbed(work)
    print("obs-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
